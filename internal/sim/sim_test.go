package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds suspiciously correlated: %d/100", same)
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(7)
	k1 := parent.Fork(1)
	parent2 := NewRNG(7)
	k1b := parent2.Fork(1)
	for i := 0; i < 100; i++ {
		if k1.Uint64() != k1b.Uint64() {
			t.Fatal("fork not deterministic")
		}
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Range(3, 9); v < 3 || v > 9 {
			t.Fatalf("Range out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		if j := r.Jitter(100, 0.4); j < 60 || j > 140 {
			t.Fatalf("Jitter out of range: %d", j)
		}
	}
	if r.Jitter(0, 0.5) != 0 {
		t.Fatal("Jitter(0) changed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGGeometric(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Geometric(10)
		if v < 1 {
			t.Fatalf("geometric sample %d < 1", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if mean < 8 || mean > 12 {
		t.Fatalf("geometric mean %.2f far from 10", mean)
	}
	if r.Geometric(0.5) != 1 {
		t.Fatal("mean<=1 must return 1")
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %.3f", frac)
	}
}

// tickCounter counts ticks and sleeps until a fixed wake time.
type tickCounter struct {
	ticks int
	wake  uint64
}

func (c *tickCounter) Tick(now uint64) { c.ticks++ }
func (c *tickCounter) NextWake(now uint64) uint64 {
	if c.wake > now {
		return c.wake
	}
	return Never
}

func TestEngineStepAndRun(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{}
	e.Register(c)
	e.FastForward = false
	e.Run(10)
	if c.ticks != 10 || e.Now() != 10 {
		t.Fatalf("ticks=%d now=%d", c.ticks, e.Now())
	}
}

func TestEngineFastForward(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{wake: 1000}
	e.Register(c)
	e.RunUntil(func() bool { return e.Now() >= 1000 })
	if e.Now() < 1000 {
		t.Fatalf("did not reach 1000: %d", e.Now())
	}
	if c.ticks > 10 {
		t.Fatalf("fast-forward did not skip: %d ticks", c.ticks)
	}
	if e.SkippedCycles == 0 {
		t.Fatal("no cycles recorded as skipped")
	}
}

func TestEngineMaxCycles(t *testing.T) {
	e := NewEngine()
	c := &tickCounter{}
	e.Register(c)
	e.FastForward = false
	e.MaxCycles = 50
	e.RunUntil(func() bool { return false })
	if e.Now() != 50 {
		t.Fatalf("MaxCycles guard failed: %d", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Register(&FuncComponent{TickFn: func(now uint64) {
		n++
		if n == 5 {
			e.Stop()
		}
	}})
	e.FastForward = false
	e.RunUntil(func() bool { return false })
	if !e.Stopped() || n != 5 {
		t.Fatalf("stop failed: n=%d", n)
	}
}

func TestEngineQuiescent(t *testing.T) {
	e := NewEngine()
	e.Register(&FuncComponent{})
	if !e.Quiescent() {
		t.Fatal("empty FuncComponent should be quiescent")
	}
	e.Register(&tickCounter{wake: 100})
	if e.Quiescent() {
		t.Fatal("component with future wake is not quiescent")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	for _, v := range []float64{3, 1, 4, 1, 5} {
		a.Observe(v)
	}
	if a.Count() != 5 || a.Sum() != 14 || a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("accumulator wrong: %+v", a)
	}
	if a.Mean() != 2.8 {
		t.Fatalf("mean = %f", a.Mean())
	}
	var b Accumulator
	b.Observe(10)
	a.Merge(&b)
	if a.Count() != 6 || a.Max() != 10 {
		t.Fatalf("merge wrong: %+v", a)
	}
	var empty Accumulator
	a.Merge(&empty)
	if a.Count() != 6 {
		t.Fatal("merging empty changed count")
	}
	var c Accumulator
	c.Merge(&a)
	if c.Count() != 6 {
		t.Fatal("merge into empty failed")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []uint64{0, 1, 2, 3, 4, 8, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %f", h.Max())
	}
	if q := h.Quantile(0.5); q == 0 {
		t.Fatal("median bound is zero")
	}
	if h.Quantile(0) > h.Quantile(1) {
		t.Fatal("quantiles not monotone")
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
	empty := NewHistogram(4)
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile")
	}
}

func TestPercentile(t *testing.T) {
	samples := []uint64{5, 1, 9, 3, 7}
	if p := Percentile(samples, 0); p != 1 {
		t.Fatalf("p0 = %d", p)
	}
	if p := Percentile(samples, 100); p != 9 {
		t.Fatalf("p100 = %d", p)
	}
	if p := Percentile(samples, 50); p != 5 {
		t.Fatalf("p50 = %d", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatal("nil samples")
	}
	// Original slice untouched.
	if samples[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestDelayQueueProperty(t *testing.T) {
	// Property: RunDue executes actions in (time, insertion) order.
	f := func(times []uint16) bool {
		var q DelayQueue
		type ev struct {
			at  uint64
			seq int
		}
		var fired []ev
		for i, tt := range times {
			at := uint64(tt)
			i := i
			q.Schedule(at, func(now uint64) { fired = append(fired, ev{at, i}) })
		}
		q.RunDue(1 << 20)
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1].at > fired[i].at {
				return false
			}
			if fired[i-1].at == fired[i].at && fired[i-1].seq > fired[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayQueueReentrant(t *testing.T) {
	// Actions scheduling follow-up actions at the same cycle run in the
	// same RunDue call.
	var q DelayQueue
	var order []int
	q.Schedule(5, func(now uint64) {
		order = append(order, 1)
		q.Schedule(now, func(uint64) { order = append(order, 2) })
	})
	q.RunDue(5)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("reentrant scheduling failed: %v", order)
	}
}
