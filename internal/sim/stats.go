package sim

import (
	"fmt"
	"sort"
)

// Counter is a simple monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Accumulator tracks the sum, count, min and max of a stream of samples.
type Accumulator struct {
	sum   float64
	count uint64
	min   float64
	max   float64
}

// Observe records one sample.
func (a *Accumulator) Observe(v float64) {
	if a.count == 0 || v < a.min {
		a.min = v
	}
	if a.count == 0 || v > a.max {
		a.max = v
	}
	a.sum += v
	a.count++
}

// Count returns the number of samples observed.
func (a *Accumulator) Count() uint64 { return a.count }

// Sum returns the sum of all samples.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 {
	if a.count == 0 {
		return 0
	}
	return a.sum / float64(a.count)
}

// Min returns the smallest sample (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// State exports the accumulator's raw fields for checkpointing.
func (a *Accumulator) State() (sum float64, count uint64, min, max float64) {
	return a.sum, a.count, a.min, a.max
}

// SetState overwrites the accumulator with previously exported state.
func (a *Accumulator) SetState(sum float64, count uint64, min, max float64) {
	a.sum, a.count, a.min, a.max = sum, count, min, max
}

// Merge folds other into a.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.count == 0 {
		return
	}
	if a.count == 0 {
		*a = *other
		return
	}
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.sum += other.sum
	a.count += other.count
}

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// boundaries: [0,1), [1,2), [2,4), [4,8), ...
type Histogram struct {
	buckets []uint64
	acc     Accumulator
}

// NewHistogram returns a histogram with n power-of-two buckets; samples that
// overflow the last boundary land in the final bucket.
func NewHistogram(n int) *Histogram {
	if n < 2 {
		n = 2
	}
	return &Histogram{buckets: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.acc.Observe(float64(v))
	b := 0
	for bound := uint64(1); v >= bound && b < len(h.buckets)-1; bound <<= 1 {
		b++
	}
	h.buckets[b]++
}

// State exports the histogram's bucket counts and accumulator for
// checkpointing. The returned slice aliases internal storage; callers
// treat it as read-only.
func (h *Histogram) State() (buckets []uint64, acc *Accumulator) {
	return h.buckets, &h.acc
}

// SetState overwrites the histogram's buckets (copied; the bucket count
// must match the histogram's) and accumulator.
func (h *Histogram) SetState(buckets []uint64, sum float64, count uint64, min, max float64) {
	copy(h.buckets, buckets)
	h.acc.SetState(sum, count, min, max)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.acc.Count() }

// Mean returns the mean of all samples.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.acc.Max() }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) derived
// from the bucket boundaries.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.acc.Count()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	bound := uint64(1)
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			if i == 0 {
				return 1
			}
			return bound
		}
		if i > 0 {
			bound <<= 1
		}
	}
	return bound
}

// String renders the non-empty buckets.
func (h *Histogram) String() string {
	s := ""
	bound := uint64(1)
	lo := uint64(0)
	for i, c := range h.buckets {
		if c > 0 {
			s += fmt.Sprintf("[%d,%d): %d  ", lo, bound, c)
		}
		lo = bound
		if i > 0 {
			bound <<= 1
		} else {
			bound = 2
		}
	}
	return s
}

// Percentile computes the p-th percentile (0-100) of raw samples. It is a
// helper for analyses that keep full sample slices.
func Percentile(samples []uint64, p float64) uint64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]uint64, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
