package sim

import (
	"testing"

	"repro/internal/par"
)

// poolUser is a quiescent component that records every SetTickPool call.
type poolUser struct {
	pools []*par.Pool
}

func (u *poolUser) Tick(now uint64)            {}
func (u *poolUser) NextWake(now uint64) uint64 { return Never }
func (u *poolUser) SetTickPool(p *par.Pool)    { u.pools = append(u.pools, p) }

func TestEngineSetTickPoolForwarding(t *testing.T) {
	e := NewEngine()
	before := &poolUser{}
	e.Register(before)
	if len(before.pools) != 0 {
		t.Fatal("Register with no pool attached must not call SetTickPool")
	}

	pool := par.NewPool(2)
	defer pool.Close()
	e.SetTickPool(pool)
	if len(before.pools) != 1 || before.pools[0] != pool {
		t.Fatalf("attach not forwarded to registered component: %v", before.pools)
	}

	// Components registered while a pool is attached receive it at
	// Register time.
	after := &poolUser{}
	e.Register(after)
	if len(after.pools) != 1 || after.pools[0] != pool {
		t.Fatalf("attach not forwarded at Register: %v", after.pools)
	}

	// Non-TickPoolUser components are simply skipped.
	e.Register(&FuncComponent{})

	e.SetTickPool(nil)
	if len(before.pools) != 2 || before.pools[1] != nil {
		t.Fatalf("detach not forwarded: %v", before.pools)
	}
	if len(after.pools) != 2 || after.pools[1] != nil {
		t.Fatalf("detach not forwarded to later component: %v", after.pools)
	}
}

// TestPolledHidesTickPool pins the cross-check escape hatch: a component
// wrapped in Polled must not receive the pool (the polled mode exists to
// reproduce strictly sequential reference behaviour).
func TestPolledHidesTickPool(t *testing.T) {
	e := NewEngine()
	u := &poolUser{}
	e.Register(Polled(u))
	pool := par.NewPool(2)
	defer pool.Close()
	e.SetTickPool(pool)
	if len(u.pools) != 0 {
		t.Fatalf("Polled component received a tick pool: %v", u.pools)
	}
}
