package sim

import "testing"

// pushComp is a minimal event-driven component: it records every tick and
// wakes itself at the cycles listed in wakes.
type pushComp struct {
	waker Waker
	next  uint64
	ticks []uint64
}

func (p *pushComp) SetWaker(w Waker) { p.waker = w }
func (p *pushComp) Tick(now uint64)  { p.ticks = append(p.ticks, now); p.next = Never }
func (p *pushComp) NextWake(now uint64) uint64 {
	if p.next <= now {
		return Never
	}
	return p.next
}

func TestWakeSetterTicksOnlyWhenDue(t *testing.T) {
	e := NewEngine()
	c := &pushComp{next: Never}
	e.Register(c)
	if c.waker == nil {
		t.Fatal("SetWaker not called at Register")
	}

	c.next = 5
	c.waker.Wake(5)
	e.RunUntil(func() bool { return e.Now() >= 10 })

	if len(c.ticks) != 1 || c.ticks[0] != 5 {
		t.Fatalf("ticks = %v, want [5]", c.ticks)
	}
	if e.TickedCycles != 1 {
		t.Fatalf("TickedCycles = %d, want 1", e.TickedCycles)
	}
	// Cycles 0-4 are jumped over, cycles 6-9 are idle advances; both count
	// as skipped.
	if e.SkippedCycles != 9 {
		t.Fatalf("SkippedCycles = %d, want 9", e.SkippedCycles)
	}
}

func TestWakeNeverDelays(t *testing.T) {
	e := NewEngine()
	c := &pushComp{next: Never}
	e.Register(c)
	c.next = 3
	c.waker.Wake(3)
	c.waker.Wake(8) // later wake must not override the earlier one
	e.RunUntil(func() bool { return e.Now() >= 5 })
	if len(c.ticks) != 1 || c.ticks[0] != 3 {
		t.Fatalf("ticks = %v, want [3]", c.ticks)
	}
}

func TestWakeDuringTickSameCycle(t *testing.T) {
	// A component waking a LATER-registered component for `now` must make it
	// tick this same cycle (matching the poll engine, which would have
	// reached it anyway); waking an EARLIER-registered component for `now`
	// must defer to now+1 (the poll engine had already passed it).
	e := NewEngine()
	early := &pushComp{next: Never}
	late := &pushComp{next: Never}
	e.Register(early)
	e.Register(&FuncComponent{TickFn: func(now uint64) {
		if now == 2 {
			early.next = now
			early.waker.Wake(now)
			late.next = now
			late.waker.Wake(now)
		}
	}, NextWakeFn: func(now uint64) uint64 {
		if now < 2 {
			return 2
		}
		return Never
	}})
	e.Register(late)

	e.RunUntil(func() bool { return e.Now() >= 6 })
	if len(late.ticks) == 0 || late.ticks[0] != 2 {
		t.Fatalf("late ticks = %v, want first at 2", late.ticks)
	}
	if len(early.ticks) == 0 || early.ticks[0] != 3 {
		t.Fatalf("early ticks = %v, want first at 3", early.ticks)
	}
}

func TestPolledWrapperForcesPolling(t *testing.T) {
	e := NewEngine()
	c := &pushComp{next: Never}
	e.Register(Polled(c))
	if c.waker != nil {
		t.Fatal("Polled component must not receive a waker")
	}
	// Another event-driven component keeps cycles 0..3 busy; the polled
	// component must tick on each of them even though it never wakes.
	d := &pushComp{next: 0}
	e.Register(d)
	d.next = 3
	e.RunUntil(func() bool { return e.Now() >= 4 })
	if len(c.ticks) == 0 {
		t.Fatal("polled component never ticked")
	}
}

func TestDelayQueueNotify(t *testing.T) {
	var got []uint64
	q := &DelayQueue{}
	q.SetNotify(func(at uint64) { got = append(got, at) })
	q.Schedule(7, func(uint64) {})
	q.Schedule(3, func(uint64) {})
	if len(got) != 2 || got[0] != 7 || got[1] != 3 {
		t.Fatalf("notify calls = %v, want [7 3]", got)
	}
}

func TestQuiescentEventDriven(t *testing.T) {
	e := NewEngine()
	c := &pushComp{next: Never}
	e.Register(c)
	if !e.Quiescent() {
		t.Fatal("idle engine not quiescent")
	}
	c.next = 4
	c.waker.Wake(4)
	if e.Quiescent() {
		t.Fatal("engine with pending wake reported quiescent")
	}
	e.RunUntil(func() bool { return e.Now() >= 5 })
	if !e.Quiescent() {
		t.Fatal("drained engine not quiescent")
	}
}
