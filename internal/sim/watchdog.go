package sim

import "fmt"

// WatchdogConfig tunes the simulation watchdog.
type WatchdogConfig struct {
	// Interval is the cycles between check sweeps (default 10 000). The
	// watchdog's NextWake keeps the event-driven engine advancing through
	// an otherwise-quiescent (deadlocked) simulation, so detection
	// latency is bounded by the budgets below plus one interval.
	Interval uint64
	// StallBudget is the cycles a busy simulation may go without any
	// forward progress before the watchdog trips (default 1 000 000).
	StallBudget uint64
	// BlockBudget is the cycles a thread may sit in one locking-path
	// state before it is reported blocked (default 2 000 000).
	BlockBudget uint64
}

// Validate fills unset fields with defaults.
func (c *WatchdogConfig) Validate() {
	if c.Interval == 0 {
		c.Interval = 10_000
	}
	if c.StallBudget == 0 {
		c.StallBudget = 1_000_000
	}
	if c.BlockBudget == 0 {
		c.BlockBudget = 2_000_000
	}
}

// WatchdogError is the typed verdict of a tripped watchdog: which
// invariant failed, when, and the diagnostic dump captured at the scene.
type WatchdogError struct {
	Cycle  uint64
	Check  string
	Detail string
	// Dump is the human-readable diagnostic snapshot (blocked-thread
	// table, packet census, recent events) captured when the check failed.
	Dump string
}

// Error implements error.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog tripped at cycle %d: %s: %s", e.Cycle, e.Check, e.Detail)
}

// watchCheck is one registered invariant.
type watchCheck struct {
	name string
	fn   func(now uint64) error
}

// Watchdog periodically sweeps a set of invariant checks over the
// simulation (packet conservation, credit bounds, forward progress,
// blocked threads). On the first violation it captures a diagnostic
// dump, records a *WatchdogError and stops the run via the configured
// stop hook. It is a sim.Component; register it AFTER every subsystem so
// its checks see a settled inter-cycle state.
type Watchdog struct {
	cfg    WatchdogConfig
	next   uint64
	checks []watchCheck
	dump   func(now uint64) string
	stop   func()
	err    *WatchdogError
}

// NewWatchdog builds a watchdog; stop is invoked once when a check trips
// (typically Engine.Stop). cfg zero-values get defaults.
func NewWatchdog(cfg WatchdogConfig, stop func()) *Watchdog {
	cfg.Validate()
	return &Watchdog{cfg: cfg, stop: stop}
}

// Config returns the validated configuration.
func (w *Watchdog) Config() WatchdogConfig { return w.cfg }

// AddCheck registers an invariant; fn returns a non-nil error to trip
// the watchdog. Checks run in registration order every Interval cycles.
func (w *Watchdog) AddCheck(name string, fn func(now uint64) error) {
	w.checks = append(w.checks, watchCheck{name: name, fn: fn})
}

// SetDump installs the diagnostic snapshot renderer invoked when a
// check trips.
func (w *Watchdog) SetDump(fn func(now uint64) string) { w.dump = fn }

// Err returns the recorded violation, or nil while all checks hold.
func (w *Watchdog) Err() error {
	if w.err == nil {
		return nil // typed-nil guard: a nil *WatchdogError is not a nil error
	}
	return w.err
}

// Tick implements sim.Component.
func (w *Watchdog) Tick(now uint64) {
	if now < w.next || w.err != nil {
		return
	}
	w.next = now + w.cfg.Interval
	for _, c := range w.checks {
		if err := c.fn(now); err != nil {
			dump := ""
			if w.dump != nil {
				dump = w.dump(now)
			}
			w.err = &WatchdogError{Cycle: now, Check: c.name, Detail: err.Error(), Dump: dump}
			if w.stop != nil {
				w.stop()
			}
			return
		}
	}
}

// NextWake implements sim.Component: the next sweep cycle. This is what
// drags the clock through a deadlocked simulation in which every other
// component is quiescent forever.
func (w *Watchdog) NextWake(now uint64) uint64 {
	if w.err != nil {
		return Never
	}
	if w.next <= now {
		return now + 1
	}
	return w.next
}

// SetWaker implements sim.WakeSetter. The watchdog never needs waking —
// its schedule is fully described by NextWake — but implementing the
// interface keeps it on the engine's event-driven path instead of
// forcing the whole engine into per-cycle legacy polling.
func (w *Watchdog) SetWaker(Waker) {}

// NewStallCheck builds a forward-progress check over a monotone counter:
// sample() must advance at least once every budget cycles. Use a sum of
// lifetime activity counters (packets injected + delivered + timer ops
// scheduled) so any progress anywhere resets the clock.
func NewStallCheck(sample func() uint64, budget uint64) func(now uint64) error {
	var lastVal, lastChange uint64
	primed := false
	return func(now uint64) error {
		v := sample()
		if !primed || v != lastVal {
			primed = true
			lastVal = v
			lastChange = now
			return nil
		}
		if now-lastChange > budget {
			return fmt.Errorf("no forward progress for %d cycles (counter stuck at %d since cycle %d)",
				now-lastChange, v, lastChange)
		}
		return nil
	}
}
