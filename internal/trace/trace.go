// Package trace records per-thread execution timelines (parallel /
// blocked / critical-section regions) and renders them as ASCII Gantt
// charts, reproducing the execution profiles of the paper's Fig. 10.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cpu"
)

// segment is a half-open interval [start, end) during which a thread was
// in one region.
type segment struct {
	start, end uint64
	region     cpu.Region
}

// Timeline collects region transitions for a set of threads.
type Timeline struct {
	open     map[int]*segment
	segments map[int][]segment
	// Limit stops recording past this cycle (0 = unlimited); Fig. 10 only
	// shows the first 3000 cycles.
	Limit uint64
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{open: make(map[int]*segment), segments: make(map[int][]segment)}
}

// Listener returns a cpu.RegionListener that records into the timeline.
func (tl *Timeline) Listener() cpu.RegionListener {
	return func(thread int, r cpu.Region, now uint64) {
		tl.transition(thread, r, now)
	}
}

func (tl *Timeline) transition(thread int, r cpu.Region, now uint64) {
	at := now
	if tl.Limit > 0 && at > tl.Limit {
		at = tl.Limit
	}
	if cur, ok := tl.open[thread]; ok {
		cur.end = at
		if cur.end > cur.start {
			tl.segments[thread] = append(tl.segments[thread], *cur)
		}
	}
	if r == cpu.RegionDone {
		delete(tl.open, thread)
		return
	}
	if tl.Limit > 0 && now >= tl.Limit {
		// The recording window is over; transitions still close whatever
		// was open (clipped to Limit above) but open nothing new.
		delete(tl.open, thread)
		return
	}
	tl.open[thread] = &segment{start: now, region: r}
}

// Close flushes open segments at cycle end (for threads still running).
func (tl *Timeline) Close(end uint64) {
	if tl.Limit > 0 && end > tl.Limit {
		end = tl.Limit
	}
	for th, cur := range tl.open {
		cur.end = end
		if cur.end > cur.start {
			tl.segments[th] = append(tl.segments[th], *cur)
		}
		delete(tl.open, th)
	}
}

// Threads returns the recorded thread ids in ascending order.
func (tl *Timeline) Threads() []int {
	var out []int
	for th := range tl.segments {
		out = append(out, th)
	}
	sort.Ints(out)
	return out
}

// Breakdown sums the time each region consumed across the given threads in
// the window [0, end).
func (tl *Timeline) Breakdown(threads []int, end uint64) map[cpu.Region]uint64 {
	out := make(map[cpu.Region]uint64)
	for _, th := range threads {
		for _, s := range tl.segments[th] {
			a, b := s.start, s.end
			if a >= end {
				continue
			}
			if b > end {
				b = end
			}
			out[s.region] += b - a
		}
	}
	return out
}

// regionChar is the Gantt glyph per region.
func regionChar(r cpu.Region) byte {
	switch r {
	case cpu.RegionParallel:
		return '.'
	case cpu.RegionBlocked:
		return '#'
	case cpu.RegionCS:
		return 'C'
	}
	return ' '
}

// Render writes an ASCII Gantt chart of the first `threads` threads over
// the window [0, window), with the given column width in cycles.
// Glyphs: '.' parallel execution, '#' blocked (competition overhead +
// waiting for other threads' critical sections), 'C' critical section.
func (tl *Timeline) Render(w io.Writer, threads int, window, colWidth uint64) {
	if colWidth == 0 {
		colWidth = 50
	}
	cols := int((window + colWidth - 1) / colWidth)
	ids := tl.Threads()
	if threads < len(ids) {
		ids = ids[:threads]
	}
	fmt.Fprintf(w, "cycles 0..%d, one column = %d cycles ('.'=parallel '#'=blocked 'C'=critical section)\n", window, colWidth)
	for _, th := range ids {
		row := make([]byte, cols)
		for i := range row {
			row[i] = ' '
		}
		for _, s := range tl.segments[th] {
			if s.start >= window {
				continue
			}
			end := s.end
			if end > window {
				end = window
			}
			for c := s.start / colWidth; c <= (end-1)/colWidth && int(c) < cols; c++ {
				// The dominant region of a column wins; blocked and CS
				// regions overwrite parallel to stay visible.
				ch := regionChar(s.region)
				if row[c] == ' ' || row[c] == '.' || ch == 'C' {
					row[c] = ch
				}
			}
		}
		fmt.Fprintf(w, "t%02d |%s|\n", th, string(row))
	}
	bd := tl.Breakdown(ids, window)
	total := float64(window) * float64(len(ids))
	if total > 0 {
		fmt.Fprintf(w, "breakdown: parallel %.1f%%  blocked %.1f%%  critical-section %.1f%%\n",
			100*float64(bd[cpu.RegionParallel])/total,
			100*float64(bd[cpu.RegionBlocked])/total,
			100*float64(bd[cpu.RegionCS])/total)
	}
}

// RenderString is Render into a string.
func (tl *Timeline) RenderString(threads int, window, colWidth uint64) string {
	var sb strings.Builder
	tl.Render(&sb, threads, window, colWidth)
	return sb.String()
}

// WriteCSV emits the recorded segments as CSV rows
// (thread,region,start,end), for external plotting of execution profiles.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "thread,region,start,end"); err != nil {
		return err
	}
	for _, th := range tl.Threads() {
		for _, s := range tl.segments[th] {
			if _, err := fmt.Fprintf(w, "%d,%s,%d,%d\n", th, s.region, s.start, s.end); err != nil {
				return err
			}
		}
	}
	return nil
}
