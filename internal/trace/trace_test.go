package trace

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestTimelineSegments(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionBlocked, 100)
	l(0, cpu.RegionCS, 250)
	l(0, cpu.RegionParallel, 300)
	l(0, cpu.RegionDone, 1000)

	bd := tl.Breakdown([]int{0}, 1000)
	if bd[cpu.RegionParallel] != 100+700 {
		t.Fatalf("parallel = %d", bd[cpu.RegionParallel])
	}
	if bd[cpu.RegionBlocked] != 150 {
		t.Fatalf("blocked = %d", bd[cpu.RegionBlocked])
	}
	if bd[cpu.RegionCS] != 50 {
		t.Fatalf("cs = %d", bd[cpu.RegionCS])
	}
}

func TestBreakdownWindowClipping(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(1, cpu.RegionBlocked, 0)
	l(1, cpu.RegionDone, 1000)
	bd := tl.Breakdown([]int{1}, 400)
	if bd[cpu.RegionBlocked] != 400 {
		t.Fatalf("clipped blocked = %d", bd[cpu.RegionBlocked])
	}
}

func TestCloseFlushesOpenSegments(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(2, cpu.RegionParallel, 0)
	tl.Close(500)
	bd := tl.Breakdown([]int{2}, 500)
	if bd[cpu.RegionParallel] != 500 {
		t.Fatalf("open segment not flushed: %d", bd[cpu.RegionParallel])
	}
}

func TestThreadsSorted(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	for _, th := range []int{5, 1, 3} {
		l(th, cpu.RegionParallel, 0)
		l(th, cpu.RegionDone, 10)
	}
	got := tl.Threads()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("threads = %v", got)
	}
}

func TestRender(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	for th := 0; th < 3; th++ {
		l(th, cpu.RegionParallel, 0)
		l(th, cpu.RegionBlocked, 300)
		l(th, cpu.RegionCS, 600)
		l(th, cpu.RegionParallel, 700)
		l(th, cpu.RegionDone, 1200)
	}
	out := tl.RenderString(3, 1200, 100)
	if !strings.Contains(out, "t00") || !strings.Contains(out, "t02") {
		t.Fatalf("missing thread rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "C") || !strings.Contains(out, ".") {
		t.Fatalf("missing region glyphs:\n%s", out)
	}
	if !strings.Contains(out, "breakdown:") {
		t.Fatalf("missing breakdown line:\n%s", out)
	}
	// Thread limit respected.
	limited := tl.RenderString(2, 1200, 100)
	if strings.Contains(limited, "t02") {
		t.Fatal("thread limit ignored")
	}
}

func TestRenderZeroColWidth(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionDone, 100)
	out := tl.RenderString(1, 100, 0) // falls back to a default width
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestZeroLengthSegmentsDropped(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 50)
	l(0, cpu.RegionBlocked, 50) // zero-length parallel segment
	l(0, cpu.RegionDone, 60)
	bd := tl.Breakdown([]int{0}, 100)
	if bd[cpu.RegionParallel] != 0 {
		t.Fatalf("zero-length segment kept: %d", bd[cpu.RegionParallel])
	}
	if bd[cpu.RegionBlocked] != 10 {
		t.Fatalf("blocked = %d", bd[cpu.RegionBlocked])
	}
}

func TestLimitClipsRecording(t *testing.T) {
	tl := NewTimeline()
	tl.Limit = 100
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionBlocked, 60)   // open at 60, will be clipped at 100
	l(0, cpu.RegionCS, 150)       // past Limit: closes blocked at 100, opens nothing
	l(0, cpu.RegionParallel, 200) // ignored entirely (nothing open, past Limit)
	tl.Close(400)

	bd := tl.Breakdown([]int{0}, 400)
	if bd[cpu.RegionParallel] != 60 {
		t.Fatalf("parallel = %d, want 60", bd[cpu.RegionParallel])
	}
	if bd[cpu.RegionBlocked] != 40 {
		t.Fatalf("blocked = %d, want 40 (clipped at Limit)", bd[cpu.RegionBlocked])
	}
	if bd[cpu.RegionCS] != 0 {
		t.Fatalf("cs = %d, want 0 (opened past Limit)", bd[cpu.RegionCS])
	}
}

func TestLimitBoundaryTransition(t *testing.T) {
	// A transition at exactly Limit closes the open segment there and must
	// not start a new one: [start, Limit) is the last recordable interval.
	tl := NewTimeline()
	tl.Limit = 100
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionBlocked, 100)
	tl.Close(300)
	bd := tl.Breakdown([]int{0}, 300)
	if bd[cpu.RegionParallel] != 100 {
		t.Fatalf("parallel = %d, want 100", bd[cpu.RegionParallel])
	}
	if bd[cpu.RegionBlocked] != 0 {
		t.Fatalf("blocked = %d, want 0 (opened at Limit)", bd[cpu.RegionBlocked])
	}
}

func TestLimitClipsClose(t *testing.T) {
	tl := NewTimeline()
	tl.Limit = 100
	l := tl.Listener()
	l(0, cpu.RegionParallel, 20)
	tl.Close(500) // still open at Limit: flushed as [20, 100)
	bd := tl.Breakdown([]int{0}, 500)
	if bd[cpu.RegionParallel] != 80 {
		t.Fatalf("parallel = %d, want 80", bd[cpu.RegionParallel])
	}
}

func TestDoneOnlyThreadRecordsNothing(t *testing.T) {
	// A thread whose only observed transition is RegionDone (it never ran)
	// must not appear in the timeline, and a zero-length run must vanish.
	tl := NewTimeline()
	l := tl.Listener()
	l(3, cpu.RegionDone, 500)
	l(4, cpu.RegionParallel, 7)
	l(4, cpu.RegionDone, 7)
	tl.Close(1000)
	if got := tl.Threads(); len(got) != 0 {
		t.Fatalf("threads = %v, want none", got)
	}
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "thread,region,start,end\n" {
		t.Fatalf("csv rows for empty timeline:\n%s", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionBlocked, 100)
	l(0, cpu.RegionDone, 200)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "thread,region,start,end\n0,parallel,0,100\n0,blocked,100,200\n"
	if out != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", out, want)
	}
}
