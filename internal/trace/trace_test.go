package trace

import (
	"strings"
	"testing"

	"repro/internal/cpu"
)

func TestTimelineSegments(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionBlocked, 100)
	l(0, cpu.RegionCS, 250)
	l(0, cpu.RegionParallel, 300)
	l(0, cpu.RegionDone, 1000)

	bd := tl.Breakdown([]int{0}, 1000)
	if bd[cpu.RegionParallel] != 100+700 {
		t.Fatalf("parallel = %d", bd[cpu.RegionParallel])
	}
	if bd[cpu.RegionBlocked] != 150 {
		t.Fatalf("blocked = %d", bd[cpu.RegionBlocked])
	}
	if bd[cpu.RegionCS] != 50 {
		t.Fatalf("cs = %d", bd[cpu.RegionCS])
	}
}

func TestBreakdownWindowClipping(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(1, cpu.RegionBlocked, 0)
	l(1, cpu.RegionDone, 1000)
	bd := tl.Breakdown([]int{1}, 400)
	if bd[cpu.RegionBlocked] != 400 {
		t.Fatalf("clipped blocked = %d", bd[cpu.RegionBlocked])
	}
}

func TestCloseFlushesOpenSegments(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(2, cpu.RegionParallel, 0)
	tl.Close(500)
	bd := tl.Breakdown([]int{2}, 500)
	if bd[cpu.RegionParallel] != 500 {
		t.Fatalf("open segment not flushed: %d", bd[cpu.RegionParallel])
	}
}

func TestThreadsSorted(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	for _, th := range []int{5, 1, 3} {
		l(th, cpu.RegionParallel, 0)
		l(th, cpu.RegionDone, 10)
	}
	got := tl.Threads()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("threads = %v", got)
	}
}

func TestRender(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	for th := 0; th < 3; th++ {
		l(th, cpu.RegionParallel, 0)
		l(th, cpu.RegionBlocked, 300)
		l(th, cpu.RegionCS, 600)
		l(th, cpu.RegionParallel, 700)
		l(th, cpu.RegionDone, 1200)
	}
	out := tl.RenderString(3, 1200, 100)
	if !strings.Contains(out, "t00") || !strings.Contains(out, "t02") {
		t.Fatalf("missing thread rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "C") || !strings.Contains(out, ".") {
		t.Fatalf("missing region glyphs:\n%s", out)
	}
	if !strings.Contains(out, "breakdown:") {
		t.Fatalf("missing breakdown line:\n%s", out)
	}
	// Thread limit respected.
	limited := tl.RenderString(2, 1200, 100)
	if strings.Contains(limited, "t02") {
		t.Fatal("thread limit ignored")
	}
}

func TestRenderZeroColWidth(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionDone, 100)
	out := tl.RenderString(1, 100, 0) // falls back to a default width
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestZeroLengthSegmentsDropped(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 50)
	l(0, cpu.RegionBlocked, 50) // zero-length parallel segment
	l(0, cpu.RegionDone, 60)
	bd := tl.Breakdown([]int{0}, 100)
	if bd[cpu.RegionParallel] != 0 {
		t.Fatalf("zero-length segment kept: %d", bd[cpu.RegionParallel])
	}
	if bd[cpu.RegionBlocked] != 10 {
		t.Fatalf("blocked = %d", bd[cpu.RegionBlocked])
	}
}

func TestWriteCSV(t *testing.T) {
	tl := NewTimeline()
	l := tl.Listener()
	l(0, cpu.RegionParallel, 0)
	l(0, cpu.RegionBlocked, 100)
	l(0, cpu.RegionDone, 200)
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := "thread,region,start,end\n0,parallel,0,100\n0,blocked,100,200\n"
	if out != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", out, want)
	}
}
