package workload

import "repro/internal/cpu"

// Builder constructs custom per-thread programs fluently, for users whose
// workload does not fit the Profile generator. All addresses are raw; use
// the helper address methods to stay inside the conventional regions (or
// pick your own layout — the platform only requires block alignment for
// meaningful reuse).
//
//	prog := workload.NewBuilder().
//	    Compute(1200).
//	    Load(workload.PrivateAddr(tid, 0)).
//	    CriticalSection(0, 80, workload.SharedAddr(0, 0)).
//	    Program()
type Builder struct {
	ops cpu.Program
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Compute appends a computation interval of n cycles.
func (b *Builder) Compute(n uint64) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpCompute, Arg: n})
	return b
}

// Load appends a blocking read of addr.
func (b *Builder) Load(addr uint64) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpLoad, Arg: addr})
	return b
}

// Store appends a blocking write of addr.
func (b *Builder) Store(addr uint64) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpStore, Arg: addr})
	return b
}

// LoadNB and StoreNB append non-blocking accesses (the thread continues
// while the miss is outstanding).
func (b *Builder) LoadNB(addr uint64) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpLoadNB, Arg: addr})
	return b
}

// StoreNB appends a non-blocking write.
func (b *Builder) StoreNB(addr uint64) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpStoreNB, Arg: addr})
	return b
}

// Lock appends a queue-spinlock acquisition of lock id.
func (b *Builder) Lock(lock int) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpLock, Arg: uint64(lock)})
	return b
}

// Unlock appends the release of lock id.
func (b *Builder) Unlock(lock int) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpUnlock, Arg: uint64(lock)})
	return b
}

// Barrier appends a synchronization point of the given group; every thread
// whose program contains the group participates.
func (b *Builder) Barrier(group int) *Builder {
	b.ops = append(b.ops, cpu.Op{Kind: cpu.OpBarrier, Arg: uint64(group)})
	return b
}

// CriticalSection appends lock -> (RMW of each addr, compute) -> unlock.
func (b *Builder) CriticalSection(lock int, compute uint64, addrs ...uint64) *Builder {
	b.Lock(lock)
	for _, a := range addrs {
		b.Load(a)
		b.Store(a)
	}
	if compute > 0 {
		b.Compute(compute)
	}
	return b.Unlock(lock)
}

// Repeat appends n copies of the program fragment built by fn.
func (b *Builder) Repeat(n int, fn func(*Builder)) *Builder {
	for i := 0; i < n; i++ {
		fn(b)
	}
	return b
}

// Program returns the built program (a copy; the builder can continue).
func (b *Builder) Program() cpu.Program {
	out := make(cpu.Program, len(b.ops))
	copy(out, b.ops)
	return out
}

// PrivateAddr returns the i-th block of thread tid's conventional private
// region.
func PrivateAddr(tid, i int) uint64 {
	return privateBase + uint64(tid)*privateStride + uint64(i)*blockBytes
}

// SharedAddr returns the i-th protected block of a lock's conventional
// shared region.
func SharedAddr(lock, i int) uint64 {
	return sharedBase + uint64(lock)*sharedStride + uint64(i)*blockBytes
}

// GlobalAddr returns the i-th block of the conventional global region.
func GlobalAddr(i int) uint64 {
	return globalBase + uint64(i)*blockBytes
}
