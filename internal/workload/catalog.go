package workload

import "fmt"

// catalog lists the 25 benchmark models in the row order of the paper's
// Table 3 (suites sorted by ROI improvement, lowest first).
//
// Parameter rationale: ComputeGap and GapMemOps set the critical-section
// access rate (how often a thread revisits a critical section); GapMemOps,
// WorkingSet, Stream and SharedFrac set the network utilisation —
// "high"-utilisation programs stream working sets far beyond the 256-block
// L1 through the memory controllers, exactly the class of codes (swim,
// mgrid, bwaves, streamcluster) the suites contain; Locks sets the
// contention spread (fewer locks = deeper per-lock competition). The
// values are calibrated so the 64-thread baseline lands in the paper's
// Fig. 2/Fig. 10 regime — a few percent of aggregate thread time executing
// critical sections, tens of percent blocked with competition overhead —
// and so the relative OCOR gains are ordered as Table 3 orders them.
var catalog = []Profile{
	// ---------------------------------------------------------- PARSEC --
	{Name: "ferret", Full: "ferret", Suite: "PARSEC", CSRate: Low, NetUtil: Low,
		ComputeGap: 12000, GapMemOps: 18, WorkingSet: 256, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 12, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "vips", Full: "vips", Suite: "PARSEC", CSRate: High, NetUtil: Low,
		ComputeGap: 10600, GapMemOps: 20, WorkingSet: 256, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 12, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "fluid", Full: "fluidanimate", Suite: "PARSEC", CSRate: Low, NetUtil: Low,
		ComputeGap: 10800, GapMemOps: 18, WorkingSet: 256, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 12, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "body", Full: "bodytrack", Suite: "PARSEC", CSRate: High, NetUtil: Low,
		ComputeGap: 10800, GapMemOps: 20, WorkingSet: 256, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 11, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "freq", Full: "freqmine", Suite: "PARSEC", CSRate: Low, NetUtil: High,
		ComputeGap: 6000, GapMemOps: 90, WorkingSet: 2048, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 6, CSLen: 110, CSMemOps: 2, Iterations: 12},
	{Name: "stream", Full: "streamcluster", Suite: "PARSEC", CSRate: High, NetUtil: High,
		ComputeGap: 5600, GapMemOps: 60, WorkingSet: 2048, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 6, CSLen: 110, CSMemOps: 2, Iterations: 13},
	{Name: "x264", Full: "x264", Suite: "PARSEC", CSRate: High, NetUtil: High,
		ComputeGap: 5000, GapMemOps: 70, WorkingSet: 2048, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 6, CSLen: 110, CSMemOps: 2, Iterations: 13},
	{Name: "swap", Full: "swaptions", Suite: "PARSEC", CSRate: High, NetUtil: Low,
		ComputeGap: 10800, GapMemOps: 24, WorkingSet: 288, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 10, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "face", Full: "facesim", Suite: "PARSEC", CSRate: High, NetUtil: High,
		ComputeGap: 4400, GapMemOps: 90, WorkingSet: 3072, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 4, CSLen: 110, CSMemOps: 2, Iterations: 12},
	{Name: "dedup", Full: "dedup", Suite: "PARSEC", CSRate: High, NetUtil: High,
		ComputeGap: 4000, GapMemOps: 110, WorkingSet: 3072, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 4, CSLen: 110, CSMemOps: 2, Iterations: 12},
	{Name: "can", Full: "canneal", Suite: "PARSEC", CSRate: High, NetUtil: High,
		ComputeGap: 4300, GapMemOps: 120, WorkingSet: 4096, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 4, CSLen: 110, CSMemOps: 2, Iterations: 12},
	// --------------------------------------------------------- OMP2012 --
	{Name: "imag", Full: "imagick", Suite: "OMP2012", CSRate: Low, NetUtil: Low,
		ComputeGap: 12500, GapMemOps: 12, WorkingSet: 192, SharedFrac: 0.04, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 12, CSLen: 100, CSMemOps: 1, Iterations: 14},
	{Name: "bt331", Full: "bt331", Suite: "OMP2012", CSRate: Low, NetUtil: Low,
		ComputeGap: 10000, GapMemOps: 14, WorkingSet: 224, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 12, CSLen: 100, CSMemOps: 1, Iterations: 14},
	{Name: "applu", Full: "applu331", Suite: "OMP2012", CSRate: Low, NetUtil: High,
		ComputeGap: 7000, GapMemOps: 100, WorkingSet: 2048, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 8, CSLen: 110, CSMemOps: 2, Iterations: 12},
	{Name: "smith", Full: "smithwa", Suite: "OMP2012", CSRate: Low, NetUtil: Low,
		ComputeGap: 13800, GapMemOps: 16, WorkingSet: 224, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 11, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "fma3d", Full: "fma3d", Suite: "OMP2012", CSRate: High, NetUtil: Low,
		ComputeGap: 11300, GapMemOps: 22, WorkingSet: 288, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 11, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "bwaves", Full: "bwaves", Suite: "OMP2012", CSRate: High, NetUtil: Low,
		ComputeGap: 10200, GapMemOps: 24, WorkingSet: 320, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 11, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "kdtree", Full: "kdtree", Suite: "OMP2012", CSRate: High, NetUtil: Low,
		ComputeGap: 11200, GapMemOps: 20, WorkingSet: 256, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 11, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "md", Full: "md", Suite: "OMP2012", CSRate: High, NetUtil: Low,
		ComputeGap: 10800, GapMemOps: 24, WorkingSet: 320, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 11, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "nab", Full: "nab", Suite: "OMP2012", CSRate: High, NetUtil: Low,
		ComputeGap: 13500, GapMemOps: 26, WorkingSet: 320, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 10, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "swim", Full: "swim", Suite: "OMP2012", CSRate: High, NetUtil: Low,
		ComputeGap: 12800, GapMemOps: 28, WorkingSet: 352, SharedFrac: 0.05, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 10, CSLen: 110, CSMemOps: 2, Iterations: 14},
	{Name: "mgrid", Full: "mgrid331", Suite: "OMP2012", CSRate: High, NetUtil: High,
		ComputeGap: 4100, GapMemOps: 130, WorkingSet: 4096, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 3, CSLen: 110, CSMemOps: 2, Iterations: 12},
	{Name: "botsa", Full: "botsalgn", Suite: "OMP2012", CSRate: High, NetUtil: High,
		ComputeGap: 3700, GapMemOps: 140, WorkingSet: 4096, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 3, CSLen: 110, CSMemOps: 2, Iterations: 12},
	{Name: "botss", Full: "botsspar", Suite: "OMP2012", CSRate: High, NetUtil: High,
		ComputeGap: 3700, GapMemOps: 150, WorkingSet: 4096, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 3, CSLen: 100, CSMemOps: 2, Iterations: 12},
	{Name: "ilbdc", Full: "ilbdc", Suite: "OMP2012", CSRate: High, NetUtil: High,
		ComputeGap: 3500, GapMemOps: 150, WorkingSet: 4096, Stream: true, SharedFrac: 0.1, GlobalBlocks: 96, SharedWriteFrac: 0.15,
		Locks: 3, CSLen: 100, CSMemOps: 2, Iterations: 12},
}

// Catalog returns the 25 benchmark profiles (a copy; callers may modify).
func Catalog() []Profile {
	out := make([]Profile, len(catalog))
	copy(out, catalog)
	return out
}

// Suite returns the profiles of one suite ("PARSEC" or "OMP2012").
func Suite(name string) []Profile {
	var out []Profile
	for _, p := range catalog {
		if p.Suite == name {
			out = append(out, p)
		}
	}
	return out
}

// ByName looks a profile up by its Table 3 abbreviation or full name.
func ByName(name string) (Profile, error) {
	for _, p := range catalog {
		if p.Name == name || p.Full == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the catalog's abbreviated names in order.
func Names() []string {
	out := make([]string, len(catalog))
	for i, p := range catalog {
		out[i] = p.Name
	}
	return out
}

// Scale returns a copy of p with Iterations multiplied by f (minimum 1);
// benchmark harnesses use it to trade run length for statistical weight.
func (p Profile) Scale(f float64) Profile {
	n := int(float64(p.Iterations) * f)
	if n < 1 {
		n = 1
	}
	p.Iterations = n
	return p
}
