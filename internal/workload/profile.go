// Package workload provides synthetic multi-threaded benchmark models for
// the 25 programs of the paper's evaluation (11 PARSEC + 14 SPEC OMP2012).
//
// The real benchmark binaries cannot run inside a Go simulation, so each
// program is modelled by a profile that reproduces the two characteristics
// the paper identifies as governing OCOR's benefit (Fig. 12 and Table 3):
// the critical-section access rate and the network utilisation. A profile
// generates per-thread programs of interleaved computation, private and
// shared memory accesses, and critical sections protected by the queue
// spinlock.
package workload

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Address-space layout (block-aligned regions, disjoint by construction).
const (
	blockBytes = 128
	// privateBase begins the per-thread private working sets.
	privateBase uint64 = 0x1000_0000
	// privateStride separates the threads' private regions.
	privateStride uint64 = 0x0010_0000
	// sharedBase begins the per-lock protected data regions.
	sharedBase uint64 = 0x4000_0000
	// sharedStride separates per-lock regions.
	sharedStride uint64 = 0x0001_0000
	// globalBase begins the global read-mostly shared region.
	globalBase uint64 = 0x6000_0000
)

// Class is a coarse high/low characterisation used by Table 3.
type Class uint8

// Characterisation classes.
const (
	Low Class = iota
	High
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == High {
		return "high"
	}
	return "low"
}

// Profile describes one benchmark model.
type Profile struct {
	// Name is the abbreviated benchmark name as the paper's Table 3 lists
	// it; Full gives the full suite name.
	Name string
	Full string
	// Suite is "PARSEC" or "OMP2012".
	Suite string
	// CSRate and NetUtil are the Table 3 characterisation classes.
	CSRate  Class
	NetUtil Class

	// Generator parameters (cycles / counts, before per-thread jitter):

	// ComputeGap is the mean parallel-computation time between critical-
	// section visits; smaller gap = higher CS access rate.
	ComputeGap int
	// GapMemOps is the number of memory accesses interleaved into each
	// gap; together with WorkingSet it drives network utilisation.
	GapMemOps int
	// WorkingSet is the per-thread private footprint in blocks; footprints
	// beyond the L1 capacity (256 blocks) miss and load the network.
	WorkingSet int
	// Barrier inserts a cohort synchronization point before each critical
	// section (the Fig. 1 wave structure); without it threads free-run.
	Barrier bool
	// Stream makes gap accesses walk the private region sequentially
	// without reuse (compulsory misses all the way to DRAM), modelling
	// memory-streaming applications; false re-uses a random-access
	// footprint of WorkingSet blocks.
	Stream bool
	// SharedFrac is the probability that a gap access touches the global
	// shared region instead of private data (coherence traffic).
	SharedFrac float64
	// GlobalBlocks is the size of the global shared region in blocks.
	GlobalBlocks int
	// SharedWriteFrac is the probability that a shared access is a write
	// (invalidation storms).
	SharedWriteFrac float64
	// Locks is the number of distinct lock variables; contention per lock
	// grows with threads/Locks.
	Locks int
	// CSLen is the mean computation inside a critical section.
	CSLen int
	// CSMemOps is the number of protected shared-block accesses inside a
	// critical section.
	CSMemOps int
	// Iterations is the number of critical-section visits per thread.
	Iterations int
}

// String implements fmt.Stringer.
func (p Profile) String() string {
	return fmt.Sprintf("%s(%s, cs=%s, net=%s)", p.Name, p.Suite, p.CSRate, p.NetUtil)
}

// Programs generates one program per thread. The generation is
// deterministic in rng; callers pass a run-seeded generator.
//
// The generated programs follow the paper's Fig. 1 structure: threads run
// a parallel phase (computation interleaved with memory traffic), meet at
// a synchronization point, and then compete for a critical section — one
// wave per iteration. Threads are partitioned into `Locks` cohorts; each
// cohort synchronizes on its own barrier and contends on its own lock, so
// the cohort size (threads/Locks) sets the contention depth.
func (p Profile) Programs(threads int, rng *sim.RNG) []cpu.Program {
	progs := make([]cpu.Program, threads)
	for t := 0; t < threads; t++ {
		progs[t] = p.program(t, threads, rng.Fork(uint64(t)+1))
	}
	return progs
}

// program builds the instruction stream of one thread.
func (p Profile) program(thread, threads int, rng *sim.RNG) cpu.Program {
	var prog cpu.Program
	privBase := privateBase + uint64(thread)*privateStride
	group := thread % max(p.Locks, 1)

	// gapAccess produces one parallel-phase memory access. Most issue
	// non-blocking (the MLP of an out-of-order core); periodic blocking
	// accesses pace the thread at a few memory round trips per batch.
	streamPos := uint64(0)
	gapAccess := func(k int) cpu.Op {
		var addr uint64
		var write bool
		if rng.Bool(p.SharedFrac) && p.GlobalBlocks > 0 {
			addr = globalBase + uint64(rng.Intn(p.GlobalBlocks))*blockBytes
			write = rng.Bool(p.SharedWriteFrac)
		} else if p.Stream {
			addr = privBase + (streamPos%uint64(max(p.WorkingSet, 1)))*blockBytes
			streamPos++
			write = rng.Bool(0.25)
		} else {
			addr = privBase + uint64(rng.Intn(max(p.WorkingSet, 1)))*blockBytes
			write = rng.Bool(0.3)
		}
		blocking := k%6 == 5
		switch {
		case blocking && write:
			return cpu.Op{Kind: cpu.OpStore, Arg: addr}
		case blocking:
			return cpu.Op{Kind: cpu.OpLoad, Arg: addr}
		case write:
			return cpu.Op{Kind: cpu.OpStoreNB, Arg: addr}
		default:
			return cpu.Op{Kind: cpu.OpLoadNB, Arg: addr}
		}
	}

	for it := 0; it < p.Iterations; it++ {
		// Parallel gap: computation interleaved with memory traffic.
		ops := p.GapMemOps
		slice := p.ComputeGap
		if ops > 0 {
			slice = p.ComputeGap / (ops + 1)
		}
		for k := 0; k < ops; k++ {
			if slice > 0 {
				prog = append(prog, cpu.Op{Kind: cpu.OpCompute, Arg: uint64(rng.Jitter(slice, 0.4))})
			}
			prog = append(prog, gapAccess(k))
		}
		if slice > 0 {
			prog = append(prog, cpu.Op{Kind: cpu.OpCompute, Arg: uint64(rng.Jitter(slice, 0.4))})
		}

		// Critical section; with Barrier the cohort meets at a
		// synchronization point first and competes as a wave on the
		// cohort's own lock (Fig. 1). Free-running threads pick a lock at
		// random each visit, re-scrambling the contention pattern.
		lock := group
		if p.Barrier {
			prog = append(prog, cpu.Op{Kind: cpu.OpBarrier, Arg: uint64(group)})
		} else {
			lock = rng.Intn(max(p.Locks, 1))
		}
		prog = append(prog, cpu.Op{Kind: cpu.OpLock, Arg: uint64(lock)})
		lockBase := sharedBase + uint64(lock)*sharedStride
		for k := 0; k < p.CSMemOps; k++ {
			addr := lockBase + uint64(k)*blockBytes
			// Protected data: read-modify-write, the canonical critical-
			// section body.
			prog = append(prog, cpu.Op{Kind: cpu.OpLoad, Arg: addr})
			prog = append(prog, cpu.Op{Kind: cpu.OpCompute, Arg: uint64(rng.Jitter(max(p.CSLen/max(p.CSMemOps, 1), 1), 0.3))})
			prog = append(prog, cpu.Op{Kind: cpu.OpStore, Arg: addr})
		}
		if p.CSMemOps == 0 && p.CSLen > 0 {
			prog = append(prog, cpu.Op{Kind: cpu.OpCompute, Arg: uint64(rng.Jitter(p.CSLen, 0.3))})
		}
		prog = append(prog, cpu.Op{Kind: cpu.OpUnlock, Arg: uint64(lock)})
	}
	return prog
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
