package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/sim"
)

func TestCatalogShape(t *testing.T) {
	all := Catalog()
	if len(all) != 25 {
		t.Fatalf("catalog has %d entries, want 25", len(all))
	}
	if n := len(Suite("PARSEC")); n != 11 {
		t.Fatalf("PARSEC has %d programs, want 11", n)
	}
	if n := len(Suite("OMP2012")); n != 14 {
		t.Fatalf("OMP2012 has %d programs, want 14", n)
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name] {
			t.Fatalf("duplicate name %s", p.Name)
		}
		seen[p.Name] = true
		if p.ComputeGap <= 0 || p.Locks <= 0 || p.Iterations <= 0 || p.CSLen <= 0 {
			t.Fatalf("%s has degenerate parameters: %+v", p.Name, p)
		}
		if p.NetUtil == High && !p.Stream && p.GapMemOps < 30 {
			t.Fatalf("%s claims high net util without traffic", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("botss")
	if err != nil || p.Full != "botsspar" {
		t.Fatalf("ByName(botss): %v %v", p, err)
	}
	p2, err := ByName("botsspar") // full name works too
	if err != nil || p2.Name != "botss" {
		t.Fatalf("ByName(botsspar): %v %v", p2, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 25 || names[0] != "ferret" {
		t.Fatalf("names = %v", names)
	}
}

func TestCatalogMutationIsolated(t *testing.T) {
	a := Catalog()
	a[0].Iterations = 9999
	b := Catalog()
	if b[0].Iterations == 9999 {
		t.Fatal("catalog copy aliases internal state")
	}
}

func TestProgramsValid(t *testing.T) {
	// Every catalog profile must generate structurally valid programs.
	rng := sim.NewRNG(1)
	for _, p := range Catalog() {
		progs := p.Programs(8, rng.Fork(77))
		if len(progs) != 8 {
			t.Fatalf("%s generated %d programs", p.Name, len(progs))
		}
		for i, prog := range progs {
			if err := prog.Validate(); err != nil {
				t.Fatalf("%s thread %d: %v", p.Name, i, err)
			}
			_, memOps, cs := prog.Stats()
			if cs != p.Iterations {
				t.Fatalf("%s thread %d: %d critical sections, want %d", p.Name, i, cs, p.Iterations)
			}
			if memOps == 0 {
				t.Fatalf("%s thread %d: no memory ops", p.Name, i)
			}
		}
	}
}

func TestProgramsDeterministic(t *testing.T) {
	p, _ := ByName("body")
	a := p.Programs(4, sim.NewRNG(5))
	b := p.Programs(4, sim.NewRNG(5))
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("thread %d: lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("thread %d op %d differs", i, j)
			}
		}
	}
	c := p.Programs(4, sim.NewRNG(6))
	same := true
	for i := range a {
		if len(a[i]) != len(c[i]) {
			same = false
			break
		}
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	// Threads' private accesses must never alias another thread's region
	// or the shared regions.
	p, _ := ByName("can")
	progs := p.Programs(16, sim.NewRNG(3))
	for tid, prog := range progs {
		lo := privateBase + uint64(tid)*privateStride
		hi := lo + privateStride
		for _, op := range prog {
			switch op.Kind {
			case cpu.OpLoad, cpu.OpStore, cpu.OpLoadNB, cpu.OpStoreNB:
				a := op.Arg
				if a >= privateBase && a < sharedBase {
					if a < lo || a >= hi {
						t.Fatalf("thread %d touches foreign private address %x", tid, a)
					}
				}
			}
		}
	}
}

func TestStreamingNeverReuses(t *testing.T) {
	// A streaming profile with WorkingSet > accesses must touch distinct
	// private blocks (compulsory misses throughout).
	p := Profile{Name: "s", ComputeGap: 100, GapMemOps: 50, WorkingSet: 100000,
		Stream: true, Locks: 1, CSLen: 10, CSMemOps: 0, Iterations: 4}
	prog := p.Programs(1, sim.NewRNG(9))[0]
	seen := map[uint64]int{}
	for _, op := range prog {
		if op.Kind == cpu.OpLoad || op.Kind == cpu.OpLoadNB || op.Kind == cpu.OpStore || op.Kind == cpu.OpStoreNB {
			if op.Arg >= privateBase && op.Arg < sharedBase {
				seen[op.Arg]++
			}
		}
	}
	for addr, n := range seen {
		if n > 1 {
			t.Fatalf("streaming reused block %x %d times", addr, n)
		}
	}
	if len(seen) < 100 {
		t.Fatalf("too few distinct blocks: %d", len(seen))
	}
}

func TestBarrierMode(t *testing.T) {
	p := Profile{Name: "b", ComputeGap: 100, GapMemOps: 2, WorkingSet: 16,
		Barrier: true, Locks: 2, CSLen: 10, CSMemOps: 1, Iterations: 3}
	progs := p.Programs(4, sim.NewRNG(2))
	for tid, prog := range progs {
		barriers := 0
		var lock uint64 = 999
		for _, op := range prog {
			if op.Kind == cpu.OpBarrier {
				barriers++
				if int(op.Arg) != tid%2 {
					t.Fatalf("thread %d in barrier group %d", tid, op.Arg)
				}
			}
			if op.Kind == cpu.OpLock {
				if lock != 999 && lock != op.Arg {
					t.Fatalf("thread %d switched locks in barrier mode", tid)
				}
				lock = op.Arg
			}
		}
		if barriers != p.Iterations {
			t.Fatalf("thread %d has %d barriers, want %d", tid, barriers, p.Iterations)
		}
	}
}

func TestScale(t *testing.T) {
	p, _ := ByName("imag")
	if got := p.Scale(0.5).Iterations; got != p.Iterations/2 {
		t.Fatalf("Scale(0.5) iterations = %d", got)
	}
	if got := p.Scale(0.0001).Iterations; got != 1 {
		t.Fatalf("Scale floor = %d", got)
	}
	if got := p.Scale(2).Iterations; got != p.Iterations*2 {
		t.Fatalf("Scale(2) = %d", got)
	}
}

func TestClassString(t *testing.T) {
	if Low.String() != "low" || High.String() != "high" {
		t.Fatal("class strings wrong")
	}
	p, _ := ByName("botss")
	if p.String() == "" {
		t.Fatal("profile string empty")
	}
}

func TestProgramGenerationProperty(t *testing.T) {
	// Property: any sane parameter combination yields a valid program
	// whose critical sections match Iterations.
	f := func(seed uint64, gapRaw, memRaw, locksRaw, itersRaw uint8) bool {
		p := Profile{
			Name:       "prop",
			ComputeGap: 10 + int(gapRaw)*20,
			GapMemOps:  int(memRaw) % 30,
			WorkingSet: 64,
			SharedFrac: 0.2, GlobalBlocks: 16, SharedWriteFrac: 0.2,
			Locks:      1 + int(locksRaw)%8,
			CSLen:      20,
			CSMemOps:   int(memRaw) % 3,
			Iterations: 1 + int(itersRaw)%6,
		}
		prog := p.Programs(3, sim.NewRNG(seed))[1]
		if prog.Validate() != nil {
			return false
		}
		_, _, cs := prog.Stats()
		return cs == p.Iterations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuilder(t *testing.T) {
	prog := NewBuilder().
		Compute(100).
		Load(PrivateAddr(2, 0)).
		StoreNB(PrivateAddr(2, 1)).
		LoadNB(GlobalAddr(3)).
		Barrier(1).
		CriticalSection(4, 60, SharedAddr(4, 0), SharedAddr(4, 1)).
		Program()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	compute, memOps, cs := prog.Stats()
	if cs != 1 {
		t.Fatalf("cs = %d", cs)
	}
	if compute != 160 {
		t.Fatalf("compute = %d", compute)
	}
	if memOps != 3+4 { // 3 explicit + 2 RMW pairs
		t.Fatalf("memOps = %d", memOps)
	}
	// Builder copies: mutating the returned program must not affect the
	// builder's next Program().
	b := NewBuilder().Compute(1)
	p1 := b.Program()
	p1[0].Arg = 999
	if b.Program()[0].Arg != 1 {
		t.Fatal("builder aliases returned program")
	}
}

func TestBuilderRepeat(t *testing.T) {
	prog := NewBuilder().Repeat(3, func(b *Builder) {
		b.Compute(10).CriticalSection(0, 5, SharedAddr(0, 0))
	}).Program()
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	_, _, cs := prog.Stats()
	if cs != 3 {
		t.Fatalf("cs = %d", cs)
	}
}

func TestAddressHelpersDisjoint(t *testing.T) {
	if PrivateAddr(0, 0) == PrivateAddr(1, 0) {
		t.Fatal("private regions collide")
	}
	if SharedAddr(0, 0) == SharedAddr(1, 0) {
		t.Fatal("shared regions collide")
	}
	// Regions are ordered private < shared < global.
	if !(PrivateAddr(63, 8191) < SharedAddr(0, 0) && SharedAddr(63, 127) < GlobalAddr(0)) {
		t.Fatal("region layout overlaps")
	}
}
