package repro

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// TestExporterNamesMatchStringers pins the exporter's duplicated name
// tables (kept local to internal/obs to avoid an import cycle) against the
// authoritative Stringers in kernel and cpu.
func TestExporterNamesMatchStringers(t *testing.T) {
	for s := kernel.StateIdle; s <= kernel.StateHolding; s++ {
		if got, want := obs.ThreadStateName(uint8(s)), s.String(); got != want {
			t.Errorf("ThreadStateName(%d) = %q, want %q", s, got, want)
		}
	}
	for r := cpu.RegionParallel; r <= cpu.RegionDone; r++ {
		if got, want := obs.RegionName(uint8(r)), r.String(); got != want {
			t.Errorf("RegionName(%d) = %q, want %q", r, got, want)
		}
	}
}

// TestPerfettoExportIntegration runs a real contended workload with the
// recorder attached and checks the exported trace end to end: it is valid
// JSON in Chrome trace-event shape, it contains at least one complete flow
// linking a locking packet's router hops to the acquisition it completed,
// it round-trips through ReadTrace, and the query layer reconstructs
// acquisitions with per-hop paths from it.
func TestPerfettoExportIntegration(t *testing.T) {
	rec := obs.NewRecorder(0)
	sys, err := New(Config{Benchmark: detProfile(), Threads: 16, OCOR: true, Seed: 7, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("ring evicted %d events on a small run; raise DefaultCapacity or shrink the workload", rec.Dropped())
	}

	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, rec.Events(), rec.Dropped()); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			ID   uint64 `json:"id"`
		} `json:"traceEvents"`
		ReproEvents  [][]uint64 `json:"reproEvents"`
		ReproDropped uint64     `json:"reproDropped"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	flowIDs := map[uint64]map[string]bool{}
	for _, e := range doc.TraceEvents {
		phases[e.Ph]++
		if e.Cat == "lock" && e.Name == "acquisition" {
			if flowIDs[e.ID] == nil {
				flowIDs[e.ID] = map[string]bool{}
			}
			flowIDs[e.ID][e.Ph] = true
		}
	}
	if phases["X"] == 0 || phases["M"] == 0 {
		t.Fatalf("missing slice or metadata events: %v", phases)
	}
	complete := 0
	for _, phs := range flowIDs {
		if phs["s"] && phs["f"] {
			complete++
		}
	}
	if complete == 0 {
		t.Fatalf("no complete acquisition flow (start+finish) in trace: phases %v, %d flow ids", phases, len(flowIDs))
	}
	if len(doc.ReproEvents) != rec.Len() {
		t.Fatalf("embedded %d raw events, recorder holds %d", len(doc.ReproEvents), rec.Len())
	}

	evs, dropped, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != rec.Dropped() {
		t.Fatalf("round-trip dropped = %d, want %d", dropped, rec.Dropped())
	}
	if !reflect.DeepEqual(evs, rec.Events()) {
		t.Fatal("events do not round-trip through WriteTrace/ReadTrace")
	}

	acqs := obs.Acquisitions(evs)
	if len(acqs) == 0 {
		t.Fatal("no acquisitions reconstructed from the trace")
	}
	withPath := 0
	for i := range acqs {
		if len(acqs[i].ReqPath) > 0 {
			withPath++
		}
	}
	if withPath == 0 {
		t.Fatal("no acquisition carries a request packet path")
	}
	top := obs.TopSlowest(acqs, 3)
	for i := 1; i < len(top); i++ {
		if top[i].BT > top[i-1].BT {
			t.Fatalf("TopSlowest not sorted: BT[%d]=%d > BT[%d]=%d", i, top[i].BT, i-1, top[i-1].BT)
		}
	}
	var sb strings.Builder
	top[0].WriteBreakdown(&sb)
	if !strings.Contains(sb.String(), "BT=") || !strings.Contains(sb.String(), "pkt#") {
		t.Fatalf("breakdown missing fields:\n%s", sb.String())
	}
}
