// Package repro is a library reproduction of "Opportunistic Competition
// Overhead Reduction for Expediting Critical Section in NoC based CMPs"
// (Yao & Lu, ISCA 2016).
//
// It assembles a full NoC-based CMP platform — a cycle-accurate mesh
// network with priority-capable virtual-channel routers, a directory-MOESI
// memory hierarchy, and the Linux-style queue spinlock with futex sleeping
// — and implements the paper's OCOR mechanism on top: locking-request
// packets carry the thread's remaining times of retry (RTR) and progress
// (PROG), and routers prioritize them per Table 1 so that threads about to
// fall asleep win critical sections while still in the cheap spinning
// phase.
//
// Quick start:
//
//	p, _ := workload.ByName("body")   // via repro.Benchmark("body")
//	base, ocor, _ := repro.Compare(p, 16, 1)
//	fmt.Println(metrics.COHImprovement(base, ocor))
package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/kernel/protocol"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Benchmark selects a workload model from the catalog (see
	// workload.Catalog); ignored when Programs is set.
	Benchmark workload.Profile
	// Programs optionally supplies explicit per-thread programs
	// (program i runs as thread i on node i).
	Programs []cpu.Program
	// Threads is the thread count (one per core); 0 means one per node.
	Threads int
	// MeshWidth/MeshHeight give the mesh; 0 derives a mesh that fits
	// Threads (2x2, 4x4, 8x4, 8x8 for the paper's 4/16/32/64 cores).
	MeshWidth, MeshHeight int
	// OCOR enables the paper's mechanism: priority-based router
	// arbitration plus the enhanced queue spinlock. False runs the
	// baseline (round-robin routers, unmodified queue spinlock).
	OCOR bool
	// PriorityLevels is the number of priority levels for locking
	// requests (paper default 8; Fig. 16 sweeps it).
	PriorityLevels int
	// Protocol selects the kernel lock algorithm ("" = the default queue
	// spinlock, byte-identical to the hard-wired baseline). See
	// internal/kernel/protocol for the registry: mcs, cna, mutable,
	// reciprocating. Overridden by an explicit Kernel config's Protocol.
	Protocol string
	// Seed makes runs reproducible; runs with the same seed and
	// configuration are cycle-identical.
	Seed uint64
	// MaxCycles aborts a stuck run (0 = default guard).
	MaxCycles uint64
	// Trace enables per-thread region timeline recording (Fig. 10).
	Trace bool
	// Obs, when non-nil, attaches a structured-event recorder to every
	// layer (NoC, lock kernel, cores, engine). Emission sites are
	// read-only, so results are bit-identical with or without it (a
	// regression test asserts this).
	Obs *obs.Recorder
	// PollEngine registers every subsystem behind sim.Polled, making the
	// engine fall back to ticking all components every executed cycle
	// instead of event-driven scheduling. Results are cycle-identical
	// either way (a regression test asserts it); this is an escape hatch
	// for cross-checking scheduler changes.
	PollEngine bool
	// NoPool disables the deterministic object freelists (NoC packets and
	// kernel/coherence messages): every allocation goes to the heap and
	// recycling is a no-op. Results are byte-identical either way (a
	// regression test asserts it); this is an escape hatch for isolating
	// pooling bugs and for measuring the pools' effect.
	NoPool bool
	// PoolDebug enables the freelists' use-after-free checker: freed
	// objects are poisoned and stale references panic instead of silently
	// reading recycled contents. Double frees always panic.
	PoolDebug bool
	// Workers is the intra-simulation parallelism width: values > 1 run
	// the NoC's tick phases on a persistent worker pool of that size
	// (sharded compute, ordered commit). Results are byte-identical for
	// every worker count — the executor only changes wall-clock time.
	// 0 and 1 both mean fully sequential. Composes with outer run-level
	// parallelism (experiments.Options.Jobs) via a shared core budget.
	Workers int

	// NoC, Mem and Kernel override subsystem defaults when non-nil.
	NoC    *noc.Config
	Mem    *mem.Config
	Kernel *kernel.Config

	// Faults, when non-nil and enabled, attaches a deterministic fault
	// injector to the NoC and the lock kernel: seeded flit drops,
	// duplicates, delays, router freezes, FUTEX_WAKE losses and priority
	// corruption per the plan. Nil (the default) is byte-identical to a
	// build without the fault machinery.
	Faults *fault.Plan
	// Recovery overrides the lock kernel's liveness-recovery settings.
	// Nil leaves recovery disabled (the byte-identical default).
	Recovery *kernel.RecoveryConfig
	// Watchdog, when non-nil, registers a simulation watchdog that sweeps
	// forward-progress and conservation invariants and aborts the run
	// with a diagnostic dump on a violation. Nil (the default) is
	// byte-identical to a build without the watchdog.
	Watchdog *sim.WatchdogConfig
}

// ConfigError is the typed validation error returned by Config.Validate:
// Field names the offending configuration field and Reason says what is
// wrong with it, mirroring noc.ConfigError and kernel.ConfigError.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("repro: invalid config: %s: %s", e.Field, e.Reason)
}

// meshDims returns the mesh New will build for this configuration: an
// explicit MeshWidth/MeshHeight wins, then a mesh derived from Threads,
// then the NoC override's own dimensions, then the 8x8 default.
func (c *Config) meshDims() (w, h int) {
	if c.MeshWidth > 0 && c.MeshHeight > 0 {
		return c.MeshWidth, c.MeshHeight
	}
	if c.Threads > 0 {
		return MeshFor(c.Threads)
	}
	if c.NoC != nil {
		return c.NoC.Width, c.NoC.Height
	}
	d := noc.DefaultConfig()
	return d.Width, d.Height
}

// Validate checks the platform configuration for impossible settings —
// negative counts, half-specified meshes, more threads or tick workers
// than the mesh has nodes — and delegates to the subsystem validators
// (noc, kernel, fault), returning a typed error that names the field to
// fix. New calls it first, so every cmd entry point reports bad flags as
// a clean error instead of panicking or misbehaving mid-run; entry
// points that stream output (CSV headers, JSON documents) call it
// directly to fail before the first byte is written. Validation never
// mutates cfg: subsystem configs are checked on copies, and default
// filling stays in the constructors.
func (c *Config) Validate() error {
	if c.Threads < 0 {
		return &ConfigError{Field: "Threads", Reason: fmt.Sprintf("negative count %d", c.Threads)}
	}
	if c.Workers < 0 {
		return &ConfigError{Field: "Workers", Reason: fmt.Sprintf("negative count %d", c.Workers)}
	}
	if c.PriorityLevels < 0 {
		return &ConfigError{Field: "PriorityLevels", Reason: fmt.Sprintf("negative count %d", c.PriorityLevels)}
	}
	if c.MeshWidth < 0 || c.MeshHeight < 0 || (c.MeshWidth > 0) != (c.MeshHeight > 0) {
		return &ConfigError{Field: "MeshWidth/MeshHeight",
			Reason: fmt.Sprintf("mesh %dx%d (set both dimensions, both positive)", c.MeshWidth, c.MeshHeight)}
	}
	if w, h := c.meshDims(); w > 0 && h > 0 {
		if c.Threads > w*h {
			return &ConfigError{Field: "Threads",
				Reason: fmt.Sprintf("%d threads exceed the %dx%d mesh's %d nodes", c.Threads, w, h, w*h)}
		}
		if c.Workers > w*h {
			return &ConfigError{Field: "Workers",
				Reason: fmt.Sprintf("%d tick workers exceed the %dx%d mesh's %d nodes (shards would be empty)", c.Workers, w, h, w*h)}
		}
	}
	if c.NoC != nil {
		nc := *c.NoC
		if err := nc.Validate(); err != nil {
			return err
		}
	}
	if !protocol.Valid(c.Protocol) {
		return &ConfigError{Field: "Protocol",
			Reason: fmt.Sprintf("unknown lock protocol %q (known: %v)", c.Protocol, protocol.Known())}
	}
	if c.Kernel != nil {
		kc := *c.Kernel
		if err := kc.Validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MeshFor returns the paper's mesh for a given core count: 2x2, 4x4, 8x4
// and 8x8 for 4, 16, 32 and 64 cores; other counts get the smallest
// near-square mesh that fits.
func MeshFor(cores int) (w, h int) {
	switch cores {
	case 4:
		return 2, 2
	case 16:
		return 4, 4
	case 32:
		return 8, 4
	case 64:
		return 8, 8
	}
	w = 1
	for w*w < cores {
		w++
	}
	h = (cores + w - 1) / w
	return w, h
}

// System is an assembled platform instance.
type System struct {
	Cfg Config

	Engine    *sim.Engine
	Net       *noc.Network
	Mem       *mem.System
	Kernel    *kernel.System
	CPU       *cpu.System
	Collector *metrics.Collector
	Timeline  *trace.Timeline
	// Faults is the attached injector (nil when Cfg.Faults is off).
	Faults *fault.Injector
	// Watchdog is the registered watchdog (nil when Cfg.Watchdog is nil).
	Watchdog *sim.Watchdog

	// started records that the workload threads have been kicked off, so
	// a system resumed from a checkpoint (or driven by repeated RunTo
	// calls) never re-issues CPU.Start.
	started bool
}

// New builds a platform from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PriorityLevels == 0 {
		cfg.PriorityLevels = core.DefaultLockLevels
	}

	// Network.
	var ncfg noc.Config
	if cfg.NoC != nil {
		ncfg = *cfg.NoC
	} else {
		ncfg = noc.DefaultConfig()
	}
	ncfg.Width, ncfg.Height = cfg.meshDims()
	ncfg.Priority = cfg.OCOR
	ncfg.NoPool = cfg.NoPool
	ncfg.PoolDebug = cfg.PoolDebug
	net, err := noc.NewNetwork(ncfg)
	if err != nil {
		return nil, err
	}
	nodes := ncfg.Nodes()
	if cfg.Threads == 0 {
		cfg.Threads = nodes
	}

	// Memory hierarchy.
	var mcfg mem.Config
	if cfg.Mem != nil {
		mcfg = *cfg.Mem
	} else {
		mcfg = mem.DefaultConfig()
	}
	mcfg.NoPool = cfg.NoPool
	mcfg.PoolDebug = cfg.PoolDebug
	msys, err := mem.NewSystem(mcfg, net)
	if err != nil {
		return nil, err
	}

	// Lock kernel with the OCOR policy.
	var kcfg kernel.Config
	if cfg.Kernel != nil {
		kcfg = *cfg.Kernel
	} else {
		kcfg = kernel.DefaultConfig()
	}
	kcfg.NoPool = cfg.NoPool
	kcfg.PoolDebug = cfg.PoolDebug
	if kcfg.Protocol == "" {
		kcfg.Protocol = cfg.Protocol
	}
	kcfg.Policy.Enabled = cfg.OCOR
	if kcfg.Policy.MaxSpin == 0 {
		kcfg.Policy.MaxSpin = core.MaxSpinCount
	}
	kcfg.Policy.LockLevels = cfg.PriorityLevels
	if kcfg.Policy.ProgSegments == 0 {
		d := core.DefaultPolicy()
		kcfg.Policy.ProgSegments = d.ProgSegments
		kcfg.Policy.ProgSpan = d.ProgSpan
	}
	if cfg.Recovery != nil {
		kcfg.Recovery = *cfg.Recovery
	}
	ksys, err := kernel.NewSystem(kcfg, net)
	if err != nil {
		return nil, err
	}

	// Fault injection (inert when no plan is configured). The plan was
	// already validated by Config.Validate above.
	var inj *fault.Injector
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		inj = fault.NewInjector(*cfg.Faults)
		net.SetFaults(inj)
		ksys.SetFaults(inj)
	}

	// Programs.
	progs := cfg.Programs
	if progs == nil {
		rng := sim.NewRNG(cfg.Seed ^ 0xc0ffee)
		progs = cfg.Benchmark.Programs(cfg.Threads, rng)
	}
	csys, err := cpu.NewSystem(msys, ksys, progs)
	if err != nil {
		return nil, err
	}

	s := &System{
		Cfg:       cfg,
		Engine:    sim.NewEngine(),
		Net:       net,
		Mem:       msys,
		Kernel:    ksys,
		CPU:       csys,
		Collector: metrics.NewCollector(),
		Faults:    inj,
	}
	ksys.SetListener(s.Collector)
	if cfg.Trace {
		s.Timeline = trace.NewTimeline()
		csys.AddRegionListener(s.Timeline.Listener())
	}
	if cfg.Obs != nil {
		net.SetObserver(cfg.Obs)
		ksys.SetObserver(cfg.Obs)
		csys.SetObserver(cfg.Obs)
		s.Engine.SetObserver(cfg.Obs)
	}

	// Node sink: demultiplex protocol payloads to their subsystem.
	for i := 0; i < nodes; i++ {
		node := i
		net.SetSink(node, func(now uint64, pkt *noc.Packet) {
			switch pkt.PayloadKind {
			case noc.PayloadMem:
				msys.Deliver(now, node, msys.MsgAt(pkt.PayloadRef))
			case noc.PayloadKernel:
				ksys.Deliver(now, node, ksys.MsgAt(pkt.PayloadRef))
			default:
				// Legacy boxed payloads (-nopool runs, custom traffic).
				switch m := pkt.Payload.(type) {
				case *mem.Msg:
					msys.Deliver(now, node, m)
				case *kernel.Msg:
					ksys.Deliver(now, node, m)
				default:
					panic(fmt.Sprintf("repro: node %d unknown payload %T", node, pkt.Payload))
				}
			}
			net.FreePacket(pkt)
		})
	}

	register := func(c sim.Component) {
		if cfg.PollEngine {
			c = sim.Polled(c)
		}
		s.Engine.Register(c)
	}
	register(net)
	register(msys)
	register(ksys)
	register(csys)
	if cfg.Watchdog != nil {
		s.Watchdog = s.buildWatchdog(*cfg.Watchdog)
		// Registered last so every sweep observes a settled inter-cycle
		// state (all subsystems of the cycle have ticked).
		register(s.Watchdog)
	}
	s.Engine.MaxCycles = cfg.MaxCycles
	if s.Engine.MaxCycles == 0 {
		s.Engine.MaxCycles = 500_000_000
	}
	return s, nil
}

// Run executes the workload to completion and returns the consolidated
// results. With Cfg.Workers > 1 it owns a worker pool for the duration of
// the run: attached before the first cycle, detached and closed before
// returning so no goroutines outlive the run (outer experiment harnesses
// start many Systems concurrently).
func (s *System) Run() (metrics.Results, error) {
	if s.Cfg.Workers > 1 {
		pool := par.NewPool(s.Cfg.Workers)
		s.Engine.SetTickPool(pool)
		defer func() {
			s.Engine.SetTickPool(nil)
			pool.Close()
		}()
	}
	s.start()
	s.Engine.RunUntil(s.CPU.AllDone)
	if err := s.watchdogErr(); err != nil {
		return metrics.Results{}, err
	}
	if !s.CPU.AllDone() {
		if s.Engine.Aborted() {
			return metrics.Results{}, fmt.Errorf("repro: run aborted at cycle %d (external abort)", s.Engine.Now())
		}
		return metrics.Results{}, fmt.Errorf("repro: run aborted at cycle %d (MaxCycles guard)", s.Engine.Now())
	}
	// Drain in-flight protocol stragglers (final releases, wakeups,
	// write-backs) so the platform ends quiescent and coherent.
	drained := func() bool {
		return !s.Net.Busy() && s.Mem.Pending() == 0 && s.Kernel.Pending() == 0
	}
	if s.Faults != nil {
		// Dropped packets never reach their protocol consumers, so a
		// faulted run may legitimately never reach protocol quiescence
		// (e.g. a swallowed final wakeup); bound the drain instead of
		// spinning to the MaxCycles guard.
		limit := s.Engine.Now() + 1_000_000
		s.Engine.RunUntil(func() bool { return drained() || s.Engine.Now() >= limit })
	} else {
		s.Engine.RunUntil(drained)
	}
	if err := s.watchdogErr(); err != nil {
		return metrics.Results{}, err
	}
	if s.Timeline != nil {
		s.Timeline.Close(s.Engine.Now())
	}
	name := s.Cfg.Benchmark.Name
	if name == "" {
		name = "custom"
	}
	return s.Collector.Finalize(name, s.Cfg.OCOR, s.CPU, s.Net), nil
}

// start kicks off the workload threads exactly once per system lifetime.
// A system restored from a mid-run checkpoint arrives with started already
// true, so its threads — whose in-flight continuations were rebuilt by the
// restore — are never started a second time.
func (s *System) start() {
	if s.started {
		return
	}
	s.started = true
	s.CPU.Start(s.Engine.Now())
}

// RunTo advances the simulation until the clock reaches at least target or
// every thread finishes, whichever comes first, and returns the cycle it
// stopped at. The workload is started on first use, so alternating RunTo
// and Snapshot carves one run into checkpointed segments; Run picks up
// seamlessly afterwards for the remainder. Like Run, a Workers > 1
// configuration owns a tick worker pool only for the duration of the call.
func (s *System) RunTo(target uint64) (uint64, error) {
	if s.Cfg.Workers > 1 {
		pool := par.NewPool(s.Cfg.Workers)
		s.Engine.SetTickPool(pool)
		defer func() {
			s.Engine.SetTickPool(nil)
			pool.Close()
		}()
	}
	s.start()
	s.Engine.RunUntil(func() bool {
		return s.CPU.AllDone() || s.Engine.Now() >= target
	})
	if err := s.watchdogErr(); err != nil {
		return s.Engine.Now(), err
	}
	return s.Engine.Now(), nil
}

// Benchmark looks up a catalog profile by name.
func Benchmark(name string) (workload.Profile, error) { return workload.ByName(name) }

// Catalog returns all 25 benchmark profiles.
func Catalog() []workload.Profile { return workload.Catalog() }

// RunBenchmark runs one catalog profile at the given scale.
func RunBenchmark(p workload.Profile, threads int, ocor bool, seed uint64) (metrics.Results, error) {
	sys, err := New(Config{Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed})
	if err != nil {
		return metrics.Results{}, err
	}
	return sys.Run()
}

// Compare runs a profile with and without OCOR under identical seeds and
// returns both results (the paper's Original vs OCOR comparison).
func Compare(p workload.Profile, threads int, seed uint64) (base, ocor metrics.Results, err error) {
	base, err = RunBenchmark(p, threads, false, seed)
	if err != nil {
		return
	}
	ocor, err = RunBenchmark(p, threads, true, seed)
	return
}
