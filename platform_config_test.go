package repro

import (
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/noc"
)

// TestPlatformConfigValidate exercises the platform-level typed
// validation errors that every cmd entry point relies on: impossible
// settings must come back as a *ConfigError naming the field, and
// subsystem problems must surface as the subsystem's own typed error.
func TestPlatformConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"negative threads", Config{Threads: -1}, "Threads"},
		{"negative workers", Config{Workers: -2}, "Workers"},
		{"negative levels", Config{PriorityLevels: -8}, "PriorityLevels"},
		{"half-specified mesh", Config{MeshWidth: 4}, "MeshWidth/MeshHeight"},
		{"negative mesh", Config{MeshWidth: -4, MeshHeight: 4}, "MeshWidth/MeshHeight"},
		{"threads exceed mesh", Config{Threads: 20, MeshWidth: 4, MeshHeight: 4}, "Threads"},
		{"workers exceed mesh", Config{Threads: 16, Workers: 17}, "Workers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != c.field {
				t.Fatalf("Validate() flagged field %q, want %q (%v)", ce.Field, c.field, err)
			}
			if _, err := New(c.cfg); err == nil {
				t.Fatal("New accepted the invalid config")
			}
		})
	}

	// Subsystem configs are validated too, on copies: the caller's struct
	// must not be default-filled as a side effect.
	ncfg := noc.Config{Width: 4, Height: 4, VCs: 2}
	var nerr *noc.ConfigError
	if err := (&Config{NoC: &ncfg}).Validate(); !errors.As(err, &nerr) {
		t.Fatalf("bad NoC config: err = %v, want *noc.ConfigError", err)
	}
	kcfg := kernel.Config{SpinInterval: -1}
	var kerr *kernel.ConfigError
	if err := (&Config{Kernel: &kcfg}).Validate(); !errors.As(err, &kerr) {
		t.Fatalf("bad kernel config: err = %v, want *kernel.ConfigError", err)
	}
	good := kernel.Config{}
	if err := (&Config{Kernel: &good}).Validate(); err != nil {
		t.Fatalf("default kernel config rejected: %v", err)
	}
	if good.SpinInterval != 0 {
		t.Fatal("Validate default-filled the caller's kernel config")
	}

	// The healthy defaults must pass untouched.
	if err := (&Config{Threads: 16, Workers: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
