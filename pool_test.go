package repro

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// TestPoolingDoesNotPerturbResults runs with the object freelists enabled
// and with -nopool heap allocation, across both engines and both OCOR
// modes, and requires byte-identical results: recycling packets and
// messages must be invisible to the simulation.
func TestPoolingDoesNotPerturbResults(t *testing.T) {
	for _, ocor := range []bool{false, true} {
		for _, poll := range []bool{false, true} {
			var got [2]metrics.Results
			for i, nopool := range []bool{false, true} {
				sys, err := New(Config{
					Benchmark: detProfile(), Threads: 16, OCOR: ocor,
					Seed: 7, PollEngine: poll, NoPool: nopool,
				})
				if err != nil {
					t.Fatal(err)
				}
				r, err := sys.Run()
				if err != nil {
					t.Fatal(err)
				}
				got[i] = r
			}
			if !reflect.DeepEqual(got[0], got[1]) {
				t.Fatalf("ocor=%v poll=%v: pooled results differ from -nopool:\npooled: %+v\nnopool: %+v",
					ocor, poll, got[0], got[1])
			}
		}
	}
}

// TestPoolDebugDoesNotPerturbResults runs the use-after-free checker over
// a contended workload: poisoning freed objects must change nothing (and
// must not trip — the platform's recycle points all sit after the last
// touch of each object).
func TestPoolDebugDoesNotPerturbResults(t *testing.T) {
	var got [2]metrics.Results
	for i, debug := range []bool{false, true} {
		sys, err := New(Config{
			Benchmark: detProfile(), Threads: 16, OCOR: true,
			Seed: 7, PoolDebug: debug,
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		got[i] = r
	}
	if !reflect.DeepEqual(got[0], got[1]) {
		t.Fatalf("PoolDebug results differ:\nbare:  %+v\ndebug: %+v", got[0], got[1])
	}
}

// TestPoolsDrainAtQuiescence requires every pooled packet and message to be
// back on its freelist once a run drains: a live object at quiescence is a
// leak (a missing recycle point).
func TestPoolsDrainAtQuiescence(t *testing.T) {
	sys, err := New(Config{Benchmark: detProfile(), Threads: 16, OCOR: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	allocs, reuses, _, live := sys.Net.PoolStats()
	if allocs == 0 || reuses == 0 {
		t.Fatalf("packet pool unused: allocs=%d reuses=%d", allocs, reuses)
	}
	if live != 0 {
		t.Fatalf("%d packets still live at quiescence (leaked recycle point)", live)
	}
	if n := sys.Kernel.MsgsLive(); n != 0 {
		t.Fatalf("%d kernel messages still live at quiescence", n)
	}
	if n := sys.Mem.MsgsLive(); n != 0 {
		t.Fatalf("%d coherence messages still live at quiescence", n)
	}
}

// TestSteadyStateAllocs drives a warmed-up platform and asserts the hot
// path allocates (nearly) nothing: the packet/message slabs, MSHR and
// directory-entry freelists, and closure-free timers must cover it. The
// budget of 2 allocs/op absorbs map-bucket growth inside Go's runtime;
// the pre-pooling figure was several hundred per op at this granularity.
func TestSteadyStateAllocs(t *testing.T) {
	prof := detProfile()
	prof.Iterations = 2000 // long enough to stay busy past warmup + sampling
	sys, err := New(Config{Benchmark: prof, Threads: 16, OCOR: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sys.CPU.Start(sys.Engine.Now())
	// Warm up: let caches fill, pools grow to the working set, and scratch
	// buffers reach their high-water capacity.
	for i := 0; i < 20_000 && !sys.CPU.AllDone(); i++ {
		sys.Engine.Step()
	}
	if sys.CPU.AllDone() {
		t.Fatal("workload finished during warmup; grow the profile")
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 50; i++ {
			sys.Engine.Step()
		}
	})
	if avg > 2 {
		t.Fatalf("steady state allocates %.1f objects per 50 cycles, want <= 2", avg)
	}
}

// BenchmarkSteadyStateStep is the CI allocation smoke benchmark: it steps a
// warmed-up contended platform and reports allocs/op, which the benchmark
// smoke job compares against the committed threshold in
// .github/alloc-threshold. Run with a fixed -benchtime (e.g. 20000x) so the
// workload stays busy for the whole measurement.
func BenchmarkSteadyStateStep(b *testing.B) {
	prof := detProfile()
	prof.Iterations = 2000
	sys, err := New(Config{Benchmark: prof, Threads: 16, OCOR: true, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	sys.CPU.Start(sys.Engine.Now())
	for i := 0; i < 20_000 && !sys.CPU.AllDone(); i++ {
		sys.Engine.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Engine.Step()
	}
}
