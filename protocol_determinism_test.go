package repro

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/kernel/protocol"
	"repro/internal/noc"
)

// protoRunBytes runs the determinism profile under one protocol cell and
// returns the JSON serialisation of the consolidated results, so any
// drift — a counter, a latency accumulator, a single cycle — compares
// byte-for-byte.
func protoRunBytes(t *testing.T, proto string, ocor, poll bool, workers int) []byte {
	t.Helper()
	cfg := Config{
		Benchmark: detProfile(), Threads: 16, OCOR: ocor,
		Seed: 7, Protocol: proto, PollEngine: poll, Workers: workers,
	}
	if workers > 1 {
		// Force the sharded tick path: the 4x4 mesh is under the executor's
		// default work threshold.
		ncfg := noc.DefaultConfig()
		ncfg.ParThreshold = -1
		cfg.NoC = &ncfg
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestProtocolDeterminismMatrix is the arena's regression matrix: every
// registered protocol, under both engines and both worker widths, must
// produce identical output bytes across repeated runs and across every
// cell of the {engine, workers} grid — a lock algorithm is only
// admissible if its schedule is a pure function of the configuration.
func TestProtocolDeterminismMatrix(t *testing.T) {
	for _, proto := range protocol.Known() {
		for _, ocor := range []bool{false, true} {
			var ref []byte
			for _, poll := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					got := protoRunBytes(t, proto, ocor, poll, workers)
					again := protoRunBytes(t, proto, ocor, poll, workers)
					if !bytes.Equal(got, again) {
						t.Fatalf("%s ocor=%v poll=%v workers=%d: repeated run diverged", proto, ocor, poll, workers)
					}
					if ref == nil {
						ref = got
						continue
					}
					if !bytes.Equal(ref, got) {
						t.Fatalf("%s ocor=%v poll=%v workers=%d: diverged from first cell:\nref: %s\ngot: %s",
							proto, ocor, poll, workers, ref, got)
					}
				}
			}
		}
	}
}

// Seed signatures of the default protocol on the determinism profile
// (Threads=16, Seed=7), pinned when the lock state machine was extracted
// behind the protocol interface. The default protocol is required to
// stay byte-identical to the original hard-wired queue spinlock; any
// behavioural change to the kernel's default path must be deliberate
// enough to justify re-pinning these.
const (
	defaultSigBase = "ec07b20599abb557bd04aa4c592770b3a5765fe9dfe0d4b12016a0c8658276c7"
	defaultSigOCOR = "a0730216bcc6888b587b51e6575e8eaf41cedfa7f4cf9c038088f863940ecefc"
)

// TestDefaultProtocolMatchesSeedSignature checks the empty-string
// protocol (the config default) and the explicit "baseline" name against
// the pinned pre-refactor signatures.
func TestDefaultProtocolMatchesSeedSignature(t *testing.T) {
	for _, proto := range []string{"", protocol.Default} {
		for _, ocor := range []bool{false, true} {
			want := defaultSigBase
			if ocor {
				want = defaultSigOCOR
			}
			sum := sha256.Sum256(protoRunBytes(t, proto, ocor, false, 1))
			if got := hex.EncodeToString(sum[:]); got != want {
				t.Fatalf("protocol %q ocor=%v: signature %s, want %s (default protocol must stay byte-identical to the seed queue spinlock)",
					proto, ocor, got, want)
			}
		}
	}
}
