package repro

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// smallProfile is a fast-running contended workload for integration tests.
func smallProfile() workload.Profile {
	return workload.Profile{
		Name: "itest", Suite: "TEST",
		ComputeGap: 800, GapMemOps: 4, WorkingSet: 64,
		SharedFrac: 0.1, GlobalBlocks: 32, SharedWriteFrac: 0.2,
		Locks: 2, CSLen: 60, CSMemOps: 1, Iterations: 6,
	}
}

func TestMeshFor(t *testing.T) {
	cases := []struct{ cores, w, h int }{
		{4, 2, 2}, {16, 4, 4}, {32, 8, 4}, {64, 8, 8}, {9, 3, 3}, {10, 4, 3},
	}
	for _, c := range cases {
		w, h := MeshFor(c.cores)
		if w != c.w || h != c.h {
			t.Fatalf("MeshFor(%d) = %dx%d, want %dx%d", c.cores, w, h, c.w, c.h)
		}
		if w*h < c.cores {
			t.Fatalf("MeshFor(%d) too small", c.cores)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Benchmark: smallProfile(), Threads: 99, MeshWidth: 2, MeshHeight: 2}); err == nil {
		t.Fatal("oversubscribed config accepted")
	}
}

func TestRunCompletes(t *testing.T) {
	sys, err := New(Config{Benchmark: smallProfile(), Threads: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ROIFinish == 0 {
		t.Fatal("zero ROI")
	}
	if res.Acquisitions != 16*6 {
		t.Fatalf("acquisitions = %d, want %d", res.Acquisitions, 16*6)
	}
	if res.TotalBT != res.TotalHeld+res.TotalCOH {
		t.Fatal("Eq. 1 decomposition broken: BT != held + COH")
	}
	// The platform must be quiescent and coherent at the end.
	if sys.Net.Busy() {
		t.Fatal("network still busy after completion")
	}
	if err := sys.Mem.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if sys.Kernel.Pending() != 0 {
		t.Fatal("kernel operations still pending")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() metrics.Results {
		r, err := RunBenchmark(smallProfile(), 16, true, 7)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.ROIFinish != b.ROIFinish || a.TotalCOH != b.TotalCOH || a.TotalBT != b.TotalBT ||
		a.SpinAcquires != b.SpinAcquires || a.TotalRetries != b.TotalRetries {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c, err := RunBenchmark(smallProfile(), 16, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.ROIFinish == a.ROIFinish && c.TotalCOH == a.TotalCOH && c.TotalRetries == a.TotalRetries {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestCompareSharesWorkload(t *testing.T) {
	base, ocor, err := Compare(smallProfile(), 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if base.OCOR || !ocor.OCOR {
		t.Fatal("config flags wrong")
	}
	// Identical workloads: same acquisition count in both runs.
	if base.Acquisitions != ocor.Acquisitions {
		t.Fatalf("acquisitions differ: %d vs %d", base.Acquisitions, ocor.Acquisitions)
	}
	// OCOR must not slow the run down dramatically on a contended profile.
	if float64(ocor.ROIFinish) > 1.25*float64(base.ROIFinish) {
		t.Fatalf("OCOR made things much worse: %d vs %d", ocor.ROIFinish, base.ROIFinish)
	}
}

func TestOCORHelpsUnderContention(t *testing.T) {
	// A deeply contended profile where the baseline queue spinlock pays
	// heavy sleep costs: OCOR must reduce COH and sleep entries.
	p := smallProfile()
	p.Locks = 1
	p.Iterations = 8
	base, ocor, err := Compare(p, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalSleeps == 0 {
		t.Skip("baseline not contended enough to sleep on this host config")
	}
	if ocor.TotalCOH >= base.TotalCOH {
		t.Fatalf("OCOR did not reduce COH: %d vs %d", ocor.TotalCOH, base.TotalCOH)
	}
	if ocor.SpinFraction < base.SpinFraction {
		t.Fatalf("OCOR reduced spin-phase entries: %f vs %f", ocor.SpinFraction, base.SpinFraction)
	}
}

func TestCustomPrograms(t *testing.T) {
	progs := []cpu.Program{
		{{Kind: cpu.OpCompute, Arg: 100}, {Kind: cpu.OpLock, Arg: 0}, {Kind: cpu.OpCompute, Arg: 10}, {Kind: cpu.OpUnlock, Arg: 0}},
		{{Kind: cpu.OpCompute, Arg: 50}, {Kind: cpu.OpLock, Arg: 0}, {Kind: cpu.OpCompute, Arg: 10}, {Kind: cpu.OpUnlock, Arg: 0}},
	}
	sys, err := New(Config{Programs: progs, Threads: 2, MeshWidth: 2, MeshHeight: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "custom" || res.Acquisitions != 2 {
		t.Fatalf("custom run: %+v", res)
	}
}

func TestInvalidCustomProgram(t *testing.T) {
	progs := []cpu.Program{{{Kind: cpu.OpLock, Arg: 0}}} // never unlocks
	if _, err := New(Config{Programs: progs, MeshWidth: 2, MeshHeight: 2}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestTraceRecording(t *testing.T) {
	sys, err := New(Config{Benchmark: smallProfile(), Threads: 16, Seed: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := sys.Timeline.RenderString(8, res.ROIFinish, res.ROIFinish/40+1)
	if !strings.Contains(out, "t00") || !strings.Contains(out, "breakdown:") {
		t.Fatalf("trace output wrong:\n%s", out)
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	sys, err := New(Config{Benchmark: smallProfile(), Threads: 16, Seed: 3, MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err == nil {
		t.Fatal("MaxCycles guard did not trip")
	}
}

func TestCatalogAccessors(t *testing.T) {
	if len(Catalog()) != 25 {
		t.Fatal("catalog size")
	}
	if _, err := Benchmark("botss"); err != nil {
		t.Fatal(err)
	}
	if _, err := Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPriorityLevelsConfig(t *testing.T) {
	for _, lv := range []int{1, 4, 16} {
		sys, err := New(Config{Benchmark: smallProfile(), Threads: 16, OCOR: true, PriorityLevels: lv, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Kernel.Cfg.Policy.LockLevels; got != lv {
			t.Fatalf("levels = %d, want %d", got, lv)
		}
		if _, err := sys.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScalabilityShape(t *testing.T) {
	// COH (absolute) must grow with thread count on a contended profile —
	// the premise of Fig. 15.
	p := smallProfile()
	var prev uint64
	for _, threads := range []int{4, 16} {
		res, err := RunBenchmark(p, threads, false, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCOH < prev {
			t.Fatalf("COH fell from %d to %d when scaling to %d threads", prev, res.TotalCOH, threads)
		}
		prev = res.TotalCOH
	}
}

func TestAblationVariants(t *testing.T) {
	p := smallProfile()
	p.Locks = 1
	p.Iterations = 4
	rows, err := Ablate(p, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationVariants()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Variant != AblationBaseline {
		t.Fatal("baseline must come first")
	}
	for _, r := range rows[1:] {
		if !r.Results.OCOR {
			t.Fatalf("%s ran without OCOR", r.Variant)
		}
	}
	// The full rule set must not lose to the baseline on a contended
	// profile.
	for _, r := range rows {
		if r.Variant == AblationFull && r.COHImprovement < 0 {
			t.Fatalf("full OCOR worse than baseline: %f", r.COHImprovement)
		}
	}
	if _, err := RunAblation(p, 16, AblationVariant("nonsense"), 1); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestEq1InvariantProperty(t *testing.T) {
	// Property: for any small random workload, the blocking-time
	// decomposition BT = heldByOthers + COH holds exactly, acquisitions
	// match the programs, and the run is coherent at the end.
	if testing.Short() {
		t.Skip("property test is slow")
	}
	for seed := uint64(1); seed <= 4; seed++ {
		p := workload.Profile{
			Name: "prop", ComputeGap: 300 + int(seed)*200, GapMemOps: int(seed % 4),
			WorkingSet: 32, SharedFrac: 0.2, GlobalBlocks: 16, SharedWriteFrac: 0.3,
			Locks: 1 + int(seed)%3, CSLen: 40, CSMemOps: 1, Iterations: 3 + int(seed)%3,
		}
		for _, ocor := range []bool{false, true} {
			sys, err := New(Config{Benchmark: p, Threads: 9, MeshWidth: 3, MeshHeight: 3, OCOR: ocor, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatalf("seed %d ocor %v: %v", seed, ocor, err)
			}
			if res.TotalBT != res.TotalHeld+res.TotalCOH {
				t.Fatalf("seed %d ocor %v: BT %d != held %d + COH %d", seed, ocor, res.TotalBT, res.TotalHeld, res.TotalCOH)
			}
			if res.Acquisitions != uint64(9*p.Iterations) {
				t.Fatalf("seed %d: acquisitions %d", seed, res.Acquisitions)
			}
			if err := sys.Mem.CheckCoherence(); err != nil {
				t.Fatalf("seed %d ocor %v: %v", seed, ocor, err)
			}
			if res.Fairness <= 0 || res.Fairness > 1.0001 {
				t.Fatalf("fairness out of range: %f", res.Fairness)
			}
		}
	}
}

func TestBarrierWorkloadEndToEnd(t *testing.T) {
	// The Fig. 1 wave structure: cohorts synchronize, then compete.
	p := smallProfile()
	p.Barrier = true
	p.Locks = 2
	p.Iterations = 4
	res, err := RunBenchmark(p, 8, false, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Acquisitions != 8*4 {
		t.Fatalf("acquisitions = %d", res.Acquisitions)
	}
}
