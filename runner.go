package repro

import (
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// init installs the platform entry points into the experiments package,
// which cannot import this package directly.
func init() {
	experiments.SetRunner(experimentRun, experimentTrace)
}

// experimentRun is the experiments.Runner backed by the full platform.
func experimentRun(p workload.Profile, threads int, ocor bool, levels int, seed uint64, nopool bool, workers int) (metrics.Results, error) {
	cfg := Config{Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed, NoPool: nopool, Workers: workers}
	if levels > 0 {
		cfg.PriorityLevels = levels
	}
	sys, err := New(cfg)
	if err != nil {
		return metrics.Results{}, err
	}
	return sys.Run()
}

// experimentTrace is the experiments.TraceRunner: it runs with timeline
// recording enabled and renders the first window cycles of the first
// traceThreads threads (window 0 selects 1/8 of the run, mirroring the
// paper's 3000-cycle excerpt).
func experimentTrace(p workload.Profile, threads int, ocor bool, seed uint64, traceThreads int, window uint64, nopool bool, workers int) (metrics.Results, string, error) {
	sys, err := New(Config{Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed, Trace: true, NoPool: nopool, Workers: workers})
	if err != nil {
		return metrics.Results{}, "", err
	}
	res, err := sys.Run()
	if err != nil {
		return metrics.Results{}, "", err
	}
	if window == 0 {
		window = res.ROIFinish / 8
		if window == 0 {
			window = res.ROIFinish
		}
	}
	col := window / 60
	if col == 0 {
		col = 1
	}
	return res, sys.Timeline.RenderString(traceThreads, window, col), nil
}

// Experiments re-exports the experiment options type for cmd binaries and
// library users.
type Experiments = experiments.Options
