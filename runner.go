package repro

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// init installs the platform entry points into the experiments package,
// which cannot import this package directly.
func init() {
	experiments.SetRunner(experimentRun, experimentTrace)
	experiments.SetFaultRunner(experimentFaultRun)
	experiments.SetArenaRunner(experimentArenaRun)
	experiments.SetForkRunner(experimentPrefix, experimentFork)
}

// experimentPrefix is the experiments.PrefixBuilder: it simulates the
// cell's protocol-independent prefix once (Protocol/Levels deliberately
// left at their defaults — the snapshot stops before the kernel ever
// consults them) and returns the platform snapshot.
func experimentPrefix(c experiments.Cell) (any, uint64, error) {
	cfg := Config{
		Benchmark: c.Profile, Threads: c.Threads, OCOR: c.OCOR,
		Seed: c.Seed, NoPool: c.NoPool, Workers: c.Workers,
	}
	return BuildPrefix(cfg)
}

// experimentFork is the experiments.ForkFn: it restores a prefix snapshot
// into the cell's full configuration and runs the remainder.
func experimentFork(prefix any, c experiments.Cell) (metrics.Results, error) {
	snap, ok := prefix.(*checkpoint.Snapshot)
	if !ok {
		return metrics.Results{}, fmt.Errorf("repro: warm-start prefix is %T, want *checkpoint.Snapshot", prefix)
	}
	cfg := Config{
		Benchmark: c.Profile, Threads: c.Threads, OCOR: c.OCOR,
		Seed: c.Seed, Protocol: c.Protocol, NoPool: c.NoPool, Workers: c.Workers,
	}
	if c.Levels > 0 {
		cfg.PriorityLevels = c.Levels
	}
	return ForkRun(cfg, snap)
}

// experimentRun is the experiments.Runner backed by the full platform.
func experimentRun(p workload.Profile, threads int, ocor bool, levels int, seed uint64, protocol string, nopool bool, workers int) (metrics.Results, error) {
	cfg := Config{Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed, Protocol: protocol, NoPool: nopool, Workers: workers}
	if levels > 0 {
		cfg.PriorityLevels = levels
	}
	sys, err := New(cfg)
	if err != nil {
		return metrics.Results{}, err
	}
	return sys.Run()
}

// experimentTrace is the experiments.TraceRunner: it runs with timeline
// recording enabled and renders the first window cycles of the first
// traceThreads threads (window 0 selects 1/8 of the run, mirroring the
// paper's 3000-cycle excerpt).
func experimentTrace(p workload.Profile, threads int, ocor bool, seed uint64, protocol string, traceThreads int, window uint64, nopool bool, workers int) (metrics.Results, string, error) {
	sys, err := New(Config{Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed, Protocol: protocol, Trace: true, NoPool: nopool, Workers: workers})
	if err != nil {
		return metrics.Results{}, "", err
	}
	res, err := sys.Run()
	if err != nil {
		return metrics.Results{}, "", err
	}
	if window == 0 {
		window = res.ROIFinish / 8
		if window == 0 {
			window = res.ROIFinish
		}
	}
	col := window / 60
	if col == 0 {
		col = 1
	}
	return res, sys.Timeline.RenderString(traceThreads, window, col), nil
}

// experimentArenaRun is the experiments.ArenaRunner: one tournament cell
// with a streaming observer attached, so the arena gets per-acquisition
// blocking-time and COH histograms plus the kernel's handoff and
// queue-depth counters alongside the standard results.
func experimentArenaRun(p workload.Profile, threads int, ocor bool, seed uint64, protocol string, workers int) (experiments.ArenaRun, error) {
	rec := obs.NewRecorder(0)
	sys, err := New(Config{
		Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed,
		Protocol: protocol, Workers: workers, Obs: rec,
	})
	if err != nil {
		return experiments.ArenaRun{}, err
	}
	res, err := sys.Run()
	if err != nil {
		return experiments.ArenaRun{}, err
	}
	run := experiments.ArenaRun{Results: res, BT: rec.Stats.BT, COH: rec.Stats.COH}
	for _, st := range sys.Kernel.LockStats(sys.Engine.Now()) {
		run.Handoffs += st.Handoffs
		if st.MaxQueueDepth > run.MaxQueueDepth {
			run.MaxQueueDepth = st.MaxQueueDepth
		}
	}
	return run, nil
}

// experimentFaultRun is the experiments.FaultRunner: one fault-injected
// run under a watchdog (so a fault-induced deadlock becomes a prompt
// typed failure, in deterministic cycles, instead of burning the
// MaxCycles budget) and an optional wall-clock timeout with panic
// capture. Run failures are folded into the outcome — a degraded run is
// a data point of the sweep, not an error.
func experimentFaultRun(p workload.Profile, threads int, ocor bool, seed uint64, protocol string,
	plan fault.Plan, recovery bool, workers int, timeout time.Duration) (experiments.FaultOutcome, error) {
	cfg := Config{
		Benchmark: p, Threads: threads, OCOR: ocor, Seed: seed, Protocol: protocol, Workers: workers,
		Recovery: &kernel.RecoveryConfig{Enabled: recovery},
		Watchdog: &sim.WatchdogConfig{},
	}
	if plan.Enabled() {
		cfg.Faults = &plan
	}
	sys, err := New(cfg)
	if err != nil {
		return experiments.FaultOutcome{}, err
	}
	// RunWithTimeout carries the panic net at every deadline, including
	// "none": a panicking degraded run is a data point, not a crash.
	res, err := sys.RunWithTimeout(timeout)
	out := experiments.FaultOutcome{
		OK:       err == nil,
		Results:  res,
		Recovery: sys.Kernel.RecoveryStats(),
	}
	if err != nil {
		out.Failure = err.Error()
		out.Results = metrics.Results{}
	}
	if sys.Faults != nil {
		out.Faults = sys.Faults.SnapshotStats()
	}
	return out, nil
}

// Experiments re-exports the experiment options type for cmd binaries and
// library users.
type Experiments = experiments.Options
