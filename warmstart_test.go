package repro

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// TestWarmGridMatchesCold is the warm-start fork's end-to-end guarantee:
// a sweep grid run with prefix forking (one shared pre-first-lock prefix
// per protocol-independent configuration) produces results byte-identical
// to the same grid run cold, with every cell simulated from cycle zero.
// The grid deliberately contains duplicate cells (the baseline rows of a
// priority-level sweep, which don't read the level) to exercise
// deduplication.
func TestWarmGridMatchesCold(t *testing.T) {
	p := detProfile()
	var cells []experiments.Cell
	for _, lv := range []int{4, 8, 16} {
		// Baseline half: levels unused, so all three cells are identical.
		cells = append(cells, experiments.Cell{Profile: p, Threads: 16, Seed: 7})
		for _, proto := range []string{"", "mcs", "cna"} {
			cells = append(cells, experiments.Cell{
				Profile: p, Threads: 16, OCOR: true, Levels: lv, Seed: 7, Protocol: proto,
			})
		}
	}

	cold, coldStats, err := experiments.RunGrid(cells, experiments.GridOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := experiments.RunGrid(cells, experiments.GridOptions{Warm: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.Unique != warmStats.Unique {
		t.Fatalf("unique counts differ: cold %d, warm %d", coldStats.Unique, warmStats.Unique)
	}
	// 3 identical baseline cells dedupe to 1; the 9 OCOR cells are distinct.
	if want := 10; warmStats.Unique != want {
		t.Fatalf("unique cells = %d, want %d", warmStats.Unique, want)
	}
	if warmStats.Forked != warmStats.Unique || warmStats.PrefixCycles == 0 {
		t.Fatalf("warm grid did not fork every unique cell: %+v", warmStats)
	}
	// One prefix per (OCOR) half: baseline and OCOR cells differ only there.
	if want := 2; warmStats.PrefixesBuilt != want {
		t.Fatalf("built %d prefixes, want %d: %+v", warmStats.PrefixesBuilt, want, warmStats)
	}
	for i := range cells {
		cj, _ := json.Marshal(cold[i])
		wj, _ := json.Marshal(warm[i])
		if !bytes.Equal(cj, wj) {
			t.Fatalf("cell %d (%+v): warm-started result diverged:\ncold: %s\nwarm: %s", i, cells[i], cj, wj)
		}
	}
}

// TestWarmGridEmitOrder asserts the streaming emitter delivers every cell
// exactly once, in cell order, and that duplicate cells receive their
// representative's result.
func TestWarmGridEmitOrder(t *testing.T) {
	p := detProfile()
	cells := []experiments.Cell{
		{Profile: p, Threads: 16, Seed: 7},
		{Profile: p, Threads: 16, OCOR: true, Levels: 8, Seed: 7},
		{Profile: p, Threads: 16, Seed: 7}, // duplicate of cell 0
		{Profile: p, Threads: 16, OCOR: true, Levels: 4, Seed: 7},
	}
	var order []int
	var emitted []metrics.Results
	res, _, err := experiments.RunGrid(cells, experiments.GridOptions{Warm: true, Jobs: 4},
		func(i int, r metrics.Results) { order = append(order, i); emitted = append(emitted, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != len(cells) {
		t.Fatalf("emitted %d cells, want %d", len(order), len(cells))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("emit order %v, want sequential", order)
		}
	}
	for i := range cells {
		ej, _ := json.Marshal(emitted[i])
		rj, _ := json.Marshal(res[i])
		if !bytes.Equal(ej, rj) {
			t.Fatalf("cell %d: emitted result differs from returned result", i)
		}
	}
	c0, _ := json.Marshal(res[0])
	c2, _ := json.Marshal(res[2])
	if !bytes.Equal(c0, c2) {
		t.Fatal("duplicate cells returned different results")
	}
}
