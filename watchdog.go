package repro

// Platform-level watchdog assembly and guarded execution: the invariant
// checks span layers (NoC packet conservation, kernel thread liveness,
// whole-platform forward progress), so they are wired here where every
// subsystem is in scope.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// buildWatchdog assembles the standard check set over the platform:
//
//   - packet conservation: injected == delivered + in-flight + dropped
//   - credit bounds: every credit counter within [0, VCDepth]
//   - stall: platform-wide activity counters must keep advancing
//   - blocked threads: no thread stuck in one locking state past budget
func (s *System) buildWatchdog(cfg sim.WatchdogConfig) *sim.Watchdog {
	w := sim.NewWatchdog(cfg, s.Engine.Stop)
	wcfg := w.Config()
	w.AddCheck("packet-conservation", func(uint64) error { return s.Net.CheckConservation() })
	w.AddCheck("credit-bounds", func(uint64) error { return s.Net.CheckCreditBounds() })
	progress := func() uint64 {
		return s.Net.Injected() + s.Net.Delivered() +
			s.Kernel.ScheduledOps() + s.Mem.ScheduledOps() + s.CPU.ScheduledOps()
	}
	stall := sim.NewStallCheck(progress, wcfg.StallBudget)
	w.AddCheck("stall", func(now uint64) error {
		if s.CPU.AllDone() {
			return nil // quiescent because finished, not stuck
		}
		return stall(now)
	})
	w.AddCheck("blocked-threads", func(now uint64) error {
		if blocked := s.Kernel.BlockedThreads(now, wcfg.BlockBudget); len(blocked) > 0 {
			return fmt.Errorf("%d threads blocked > %d cycles (first: thread %d %s on lock %d since cycle %d)",
				len(blocked), wcfg.BlockBudget,
				blocked[0].Thread, blocked[0].State, blocked[0].Lock, blocked[0].Since)
		}
		return nil
	})
	w.SetDump(s.diagnosticDump)
	return w
}

// DiagnosticDump renders the watchdog's diagnostic scene at the current
// cycle, for tools (and tests) that want the blocked-thread table
// without waiting for a tripped invariant — e.g. a fleet poison record
// attaching the scene of a repeatedly failing cell.
func (s *System) DiagnosticDump() string { return s.diagnosticDump(s.Engine.Now()) }

// diagnosticDump renders the scene of a watchdog trip: the blocked-thread
// table, the packet census, recovery and fault counters, and the tail of
// the structured event stream when a recorder is attached.
func (s *System) diagnosticDump(now uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle %d\n", now)
	fmt.Fprintf(&sb, "census: %+v\n", s.Net.CensusNow())
	fmt.Fprintf(&sb, "recovery: %+v\n", s.Kernel.RecoveryStats())
	if s.Faults != nil {
		fmt.Fprintf(&sb, "faults: %+v\n", s.Faults.SnapshotStats())
	}
	blocked := s.Kernel.BlockedThreads(now, 0)
	fmt.Fprintf(&sb, "threads in lock path: %d\n", len(blocked))
	for i, b := range blocked {
		if i == 16 {
			fmt.Fprintf(&sb, "  ... %d more\n", len(blocked)-i)
			break
		}
		fmt.Fprintf(&sb, "  thread %d: %s on lock %d since %d (outstanding=%v retries=%d sleeps=%d)\n",
			b.Thread, b.State, b.Lock, b.Since, b.Outstanding, b.Retries, b.Sleeps)
	}
	for _, ls := range s.Kernel.LockStats(now) {
		fmt.Fprintf(&sb, "  lock %d@%d: acq=%d fails=%d wakes=%d sleepers=%d pollers=%d held=%d\n",
			ls.Lock, ls.Home, ls.Acquisitions, ls.FailedTries, ls.Wakes, ls.Sleepers, ls.Pollers, ls.HeldCycles)
	}
	if s.Cfg.Obs != nil {
		evs := s.Cfg.Obs.Events()
		const tail = 32
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Fprintf(&sb, "last %d events:\n", len(evs))
		for _, ev := range evs {
			fmt.Fprintf(&sb, "  @%d kind=%s node=%d pkt=%d v=(%d,%d,%d)\n",
				ev.At, ev.Kind, ev.Node, ev.Pkt, ev.V1, ev.V2, ev.V3)
		}
	}
	return sb.String()
}

// watchdogErr surfaces a tripped watchdog as the run's error.
func (s *System) watchdogErr() error {
	if s.Watchdog == nil {
		return nil
	}
	return s.Watchdog.Err()
}

// RunWithTimeout executes Run under a wall-clock deadline and a panic
// net: a deadline expiry aborts the engine at the next cycle boundary
// (deterministic simulation state, nondeterministic abort point — only
// for harness protection, never for measurements), and a panicking run
// is converted into an error instead of taking the process down. A
// non-positive deadline keeps the panic net but no wall clock, so fleet
// workers and the fault harness get one guarded entry point either way.
func (s *System) RunWithTimeout(d time.Duration) (res metrics.Results, err error) {
	if d > 0 {
		timer := time.AfterFunc(d, s.Engine.RequestAbort)
		defer timer.Stop()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("repro: run panicked: %v", r)
		}
	}()
	res, err = s.Run()
	if err == nil && d > 0 && s.Engine.Aborted() {
		err = fmt.Errorf("repro: run aborted after wall-clock timeout %v at cycle %d", d, s.Engine.Now())
	}
	return res, err
}
