package repro

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDiagnosticDumpGolden pins the watchdog's diagnostic scene — the
// blocked-thread table, packet census, lock statistics and event tail —
// against a golden file. The dump is what a tripped invariant, a fleet
// poison record, or a postmortem reader sees; a format drift should be a
// deliberate `go test -run DiagnosticDumpGolden -update`, not an
// accident. The scene itself is deterministic: a fixed contended profile
// advanced to a fixed cycle renders the same bytes on every run.
func TestDiagnosticDumpGolden(t *testing.T) {
	prof := workload.Profile{
		Name: "wdgolden", ComputeGap: 100, GapMemOps: 1, WorkingSet: 32,
		SharedFrac: 0.2, GlobalBlocks: 16, SharedWriteFrac: 0.25,
		Locks: 1, CSLen: 400, CSMemOps: 2, Iterations: 6,
	}
	rec := obs.NewRecorder(64)
	sys, err := New(Config{Benchmark: prof, Threads: 8, Seed: 1, Obs: rec})
	if err != nil {
		t.Fatal(err)
	}
	// Deep in the single-lock convoy: most threads blocked on lock 0.
	if _, err := sys.RunTo(6000); err != nil {
		t.Fatal(err)
	}
	dump := sys.DiagnosticDump()

	// Shape checks first, so a failure explains itself even when the
	// golden file is stale.
	for _, want := range []string{"cycle ", "census:", "threads in lock path:", "lock 0@", "last "} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump lost its %q section:\n%s", want, dump)
		}
	}

	golden := filepath.Join("testdata", "watchdog_dump.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(dump), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run DiagnosticDumpGolden -update ./` to create it)", err)
	}
	if dump != string(want) {
		t.Fatalf("diagnostic dump drifted from golden (rerun with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s", dump, want)
	}
}
